"""Dependency-free JSON HTTP API over :class:`SelectionEngine`.

Endpoints
---------
``GET /healthz``
    Liveness + the served corpus version.
``GET /metrics``
    Engine metrics as JSON; ``?format=prometheus`` (or an ``Accept:
    text/plain`` header) switches to the Prometheus text format.
``POST /v1/select``
    Body: ``{"target": ..., "m": 3, "lam": 1.0, "mu": 0.1, "scheme":
    "binary", "algorithm": "CompaReSetS+", "max_comparisons": 10,
    "min_reviews": 3}`` — every field optional.  Returns ``{"result":
    ..., "provenance": ...}``.
``POST /v1/narrow``
    The select body plus ``k``, ``time_limit`` and ``stages``.
``POST /v1/reload``
    Admin: ``{"path": "corpus.jsonl"}`` — validate the new corpus in the
    background (old generation keeps serving) and atomically swap it in.
    409 when validation fails or another reload is running.
``POST /v1/ingest``
    Durable delta ingest: ``{"reviews": [{"review_id": ..., "product_id":
    ..., ...}, ...]}``.  The batch is fsynced to the write-ahead log
    *before* the 200 ack, so an acknowledged delta survives any crash.
    400 for malformed reviews, 409 for duplicate review ids, 503 (with
    ``Retry-After``) when the log cannot be written (disk full).
``POST /v1/snapshot``
    Admin: write an atomic generation snapshot now and compact the WAL.
    409 when the engine has no durable state configured.

Error mapping: malformed JSON or mistyped/unknown fields are 400;
semantically invalid requests (unknown target or algorithm, non-viable
instance) are 422; a request shed by admission control is 429 with a
``Retry-After`` header; a reload conflict is 409; an exhausted deadline,
a draining engine (also ``Retry-After``), or a closed engine is 503.
The full table lives in ``docs/SERVING.md``.  An ``X-Deadline-Ms``
request header installs a per-request deadline that propagates through
the engine into every solver (the PR-1 ambient deadline scope), so a
client-side budget bounds the server-side work.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, which is exactly what the engine's single-flight cache and
micro-batcher are designed to coalesce.
"""

from __future__ import annotations

import json
import math
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.resilience.deadline import DeadlineExceeded, deadline_scope
from repro.serve.admission import Overloaded
from repro.serve.breaker import CircuitOpen
from repro.serve.engine import (
    EngineClosed,
    EngineDraining,
    InvalidRequest,
    NarrowRequest,
    SelectionEngine,
    SelectRequest,
)
from repro.serve.health import DRAINING
from repro.serve.store import (
    CorpusValidationError,
    DeltaValidationError,
    ReloadInProgress,
    UnknownTargetError,
    UnviableTargetError,
)


def encode_json(payload: object) -> bytes:
    """The canonical response encoding (sorted keys, no whitespace).

    Shared by the server and the equivalence tests so "HTTP result ==
    offline selector result" is a plain bytes comparison.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


class _BadRequest(ValueError):
    """Malformed body: not JSON, not an object, or mistyped fields (400)."""


_NUMBER = (int, float)
_SELECT_FIELDS: dict[str, tuple[type, ...]] = {
    "target": (str, type(None)),
    "m": (int,),
    "lam": _NUMBER,
    "mu": _NUMBER,
    "scheme": (str,),
    "algorithm": (str,),
    "max_comparisons": (int,),
    "min_reviews": (int,),
}
_NARROW_FIELDS: dict[str, tuple[type, ...]] = {
    **_SELECT_FIELDS,
    "k": (int,),
    "time_limit": _NUMBER,
    "stages": (list,),
}


def _parse_request(body: dict, narrow: bool) -> SelectRequest:
    """Typed field extraction; wrong shapes raise :class:`_BadRequest`."""
    fields = _NARROW_FIELDS if narrow else _SELECT_FIELDS
    unknown = sorted(set(body) - set(fields))
    if unknown:
        raise _BadRequest(f"unknown fields: {unknown}")
    kwargs: dict[str, object] = {}
    for name, value in body.items():
        expected = fields[name]
        if isinstance(value, bool) or not isinstance(value, expected):
            names = "/".join(t.__name__ for t in expected)
            raise _BadRequest(f"field {name!r} must be {names}")
        kwargs[name] = value
    if "stages" in kwargs:
        stages = kwargs["stages"]
        if not all(isinstance(stage, str) for stage in stages):
            raise _BadRequest("field 'stages' must be a list of strings")
        kwargs["stages"] = tuple(stages)
    if narrow:
        return NarrowRequest(**kwargs)
    return SelectRequest(**kwargs)


# Shared with the cluster shard worker (repro.serve.cluster.worker): the
# shard hop reuses the exact body validation, error taxonomy, and
# canonical encoding, so a gateway response is byte-identical to the
# single-process server's for the same request.
BadRequest = _BadRequest
parse_request = _parse_request


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the engine for its handlers."""

    daemon_threads = True
    # The stdlib default backlog of 5 drops connections under the very
    # bursts admission control is built to absorb; shedding must happen
    # at the application layer (429), not as kernel connection resets.
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], engine: SelectionEngine) -> None:
        super().__init__(address, ServeHandler)
        self.engine = engine
        self.started_at = time.monotonic()


class ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # Typed for handler-side access; set by ServingHTTPServer.__init__.
    server: ServingHTTPServer

    def log_message(self, format: str, *args) -> None:
        # Access logs go to metrics, not stderr (the CLI keeps stdout for
        # the one "serving on ..." line the smoke harness parses).
        pass

    # -- plumbing ------------------------------------------------------------

    def _send(
        self,
        status: int,
        payload: object,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
    ) -> None:
        body = (
            payload if isinstance(payload, bytes) else encode_json(payload)
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        message: str,
        retry_after: float | None = None,
        extra: dict[str, object] | None = None,
    ) -> None:
        self.server.engine.metrics.counter(
            "repro_http_errors_total", "error responses by status",
            labels={"status": str(status)},
        ).inc()
        headers = None
        payload: dict[str, object] = {"error": message, "status": status}
        if retry_after is not None:
            # The header wants integer seconds (RFC 9110); the body keeps
            # the precise hint for clients that parse JSON.
            headers = {"Retry-After": str(max(1, math.ceil(retry_after)))}
            payload["retry_after"] = round(retry_after, 3)
        if extra:
            payload.update(extra)
        self._send(status, payload, headers=headers)

    def _deadline_ms(self) -> float | None:
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise _BadRequest(f"X-Deadline-Ms must be a number, got {raw!r}") from None
        if value <= 0:
            raise _BadRequest(f"X-Deadline-Ms must be positive, got {raw!r}")
        return value

    def _read_body(self) -> dict:
        length = self.headers.get("Content-Length")
        try:
            size = int(length) if length is not None else 0
        except ValueError:
            raise _BadRequest("invalid Content-Length") from None
        raw = self.rfile.read(size) if size else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    # -- endpoints -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path == "/healthz":
            engine = self.server.engine
            health = engine.health.view()
            state = health["state"]
            payload = {
                # "ok" is the legacy healthy value (smoke tests and
                # probes grep for it); degraded/draining name the state.
                "status": "ok" if state == "healthy" else state,
                "corpus_version": engine.store.version,
                "uptime_seconds": round(
                    time.monotonic() - self.server.started_at, 3
                ),
                "inflight": engine.admission.inflight,
            }
            if "reasons" in health:
                payload["reasons"] = health["reasons"]
            if engine.recovery is not None:
                # Recovery provenance: how this process rebuilt its state
                # (snapshot/WAL modes, replay counts, supervisor restarts).
                payload["recovery"] = engine.recovery.as_dict()
            # Draining answers 503 so load balancers stop routing here,
            # while in-flight requests keep completing.  Recovering stays
            # 200: the instance is serving, just rebuilding warmth.
            self._send(503 if state == DRAINING else 200, payload)
        elif url.path == "/metrics":
            query = parse_qs(url.query)
            accept = self.headers.get("Accept", "")
            wants_text = (
                query.get("format", [""])[0] == "prometheus"
                or "text/plain" in accept
            )
            if wants_text:
                self._send(
                    200,
                    self.server.engine.metrics.render_prometheus().encode(),
                    content_type="text/plain; version=0.0.4",
                )
            else:
                self._send(200, self.server.engine.metrics.as_dict())
        elif url.path in (
            "/v1/select", "/v1/narrow", "/v1/reload", "/v1/ingest", "/v1/snapshot"
        ):
            self._send_error_json(405, f"{url.path} requires POST")
        else:
            self._send_error_json(404, f"unknown endpoint {url.path!r}")

    def _do_reload(self) -> None:
        engine = self.server.engine
        previous = engine.store.version
        try:
            body = self._read_body()
            unknown = sorted(set(body) - {"path"})
            if unknown:
                raise _BadRequest(f"unknown fields: {unknown}")
            path = body.get("path")
            if not isinstance(path, str) or not path:
                raise _BadRequest("field 'path' (a corpus file path) is required")
            version = engine.reload_from_path(path)
        except _BadRequest as exc:
            self._send_error_json(400, str(exc))
        except ReloadInProgress as exc:
            self._send_error_json(409, str(exc), extra={"version": previous})
        except CorpusValidationError as exc:
            # Validation failed before any swap: the previous generation
            # is still the one serving (that *is* the rollback).
            self._send_error_json(409, str(exc), extra={"version": previous})
        except Exception as exc:  # pragma: no cover - defensive backstop
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self._send(200, {"version": version, "previous": previous})

    def _do_ingest(self) -> None:
        engine = self.server.engine
        try:
            body = self._read_body()
            unknown = sorted(set(body) - {"reviews"})
            if unknown:
                raise _BadRequest(f"unknown fields: {unknown}")
            reviews = body.get("reviews")
            if not isinstance(reviews, list) or not reviews:
                raise _BadRequest(
                    "field 'reviews' (a non-empty list of review objects) "
                    "is required"
                )
            if not all(isinstance(entry, dict) for entry in reviews):
                raise _BadRequest("every entry in 'reviews' must be an object")
            ack = engine.ingest_reviews(reviews)
        except _BadRequest as exc:
            self._send_error_json(400, str(exc))
        except DeltaValidationError as exc:
            # Duplicate review ids conflict with existing state (409);
            # everything else is a malformed batch (400).
            self._send_error_json(409 if exc.conflict else 400, str(exc))
        except EngineDraining as exc:
            self._send_error_json(
                503, str(exc), retry_after=engine.jitter.apply(1.0)
            )
        except EngineClosed as exc:
            self._send_error_json(503, str(exc))
        except OSError as exc:
            # WAL append failed (disk full, IO error): the delta was
            # neither applied nor acked — safe for the client to retry.
            self._send_error_json(
                503,
                f"cannot persist delta: {exc}",
                retry_after=engine.jitter.apply(2.0),
                extra={"reason": "wal_unavailable"},
            )
        except Exception as exc:  # pragma: no cover - defensive backstop
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self._send(200, ack)

    def _do_snapshot(self) -> None:
        engine = self.server.engine
        try:
            info = engine.snapshot()
        except RuntimeError as exc:
            self._send_error_json(409, str(exc))
        except OSError as exc:
            self._send_error_json(
                503,
                f"snapshot failed: {exc}",
                retry_after=engine.jitter.apply(2.0),
            )
        except Exception as exc:  # pragma: no cover - defensive backstop
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self._send(
                200,
                {
                    "path": str(info.path),
                    "version": info.version,
                    "wal_seq": info.wal_seq,
                    "artifacts": info.artifacts,
                },
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path == "/v1/reload":
            self._do_reload()
            return
        if url.path == "/v1/ingest":
            self._do_ingest()
            return
        if url.path == "/v1/snapshot":
            self._do_snapshot()
            return
        if url.path not in ("/v1/select", "/v1/narrow"):
            if url.path in ("/healthz", "/metrics"):
                self._send_error_json(405, f"{url.path} requires GET")
            else:
                self._send_error_json(404, f"unknown endpoint {url.path!r}")
            return
        narrow = url.path == "/v1/narrow"
        engine = self.server.engine
        try:
            deadline_ms = self._deadline_ms()
            request = _parse_request(self._read_body(), narrow)
            with deadline_scope(
                None if deadline_ms is None else deadline_ms / 1e3
            ):
                if narrow:
                    response = engine.narrow(request)
                else:
                    response = engine.select(request)
        except _BadRequest as exc:
            self._send_error_json(400, str(exc))
        except TypeError as exc:
            self._send_error_json(400, str(exc))
        except (InvalidRequest, UnknownTargetError, UnviableTargetError) as exc:
            self._send_error_json(422, str(exc))
        except Overloaded as exc:
            self._send_error_json(
                429, str(exc), retry_after=exc.retry_after,
                extra={"reason": exc.reason},
            )
        except EngineDraining as exc:
            self._send_error_json(
                503, str(exc), retry_after=engine.jitter.apply(1.0)
            )
        except CircuitOpen as exc:
            # Every usable backend is breaker-open; hint retry around the
            # breaker's recovery window (jittered against retry herds).
            self._send_error_json(
                503, str(exc), retry_after=engine.jitter.apply(5.0),
                extra={"reason": "circuit_open"},
            )
        except (DeadlineExceeded, EngineClosed) as exc:
            self._send_error_json(503, str(exc))
        except Exception as exc:  # pragma: no cover - defensive backstop
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self._send(200, response.as_dict())


def make_server(
    engine: SelectionEngine, host: str = "127.0.0.1", port: int = 0
) -> ServingHTTPServer:
    """Bind (but do not start) a serving HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address`` — the end-to-end tests and the smoke target
    rely on this to avoid port collisions.
    """
    return ServingHTTPServer((host, port), engine)


def run_server(
    engine: SelectionEngine,
    host: str,
    port: int,
    *,
    drain_timeout: float = 30.0,
) -> None:
    """Blocking convenience used by ``repro-cli serve``.

    Installs SIGTERM/SIGINT handlers (when running on the main thread)
    that shut down *gracefully*: the engine enters the draining state —
    new requests get 503 + ``Retry-After`` — in-flight requests finish
    within ``drain_timeout`` seconds, and only then does the process
    exit.  A second signal falls back to the default handler (immediate
    exit) so a hung drain can still be interrupted.
    """
    server = make_server(engine, host, port)
    bound_host, bound_port = server.server_address[:2]
    stopping = threading.Event()

    def _graceful_stop() -> None:
        drained = engine.drain(drain_timeout)
        if not drained:
            print("drain timeout: cancelled remaining in-flight work", flush=True)
        server.shutdown()

    def _handle_signal(signum, frame) -> None:
        if stopping.is_set():
            raise KeyboardInterrupt
        stopping.set()
        print(f"received signal {signum}: draining...", flush=True)
        # Drain off the signal-handler frame so the serve loop keeps
        # completing in-flight responses while we wait.
        threading.Thread(
            target=_graceful_stop, name="repro-serve-drain", daemon=True
        ).start()

    installed: list[int] = []
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, _handle_signal)
                installed.append(signum)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                break
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum in installed:
            signal.signal(signum, signal.SIG_DFL)
        server.server_close()
        if not stopping.is_set():
            engine.close()
        print("server stopped", flush=True)
