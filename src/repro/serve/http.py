"""Dependency-free JSON HTTP API over :class:`SelectionEngine`.

Endpoints
---------
``GET /healthz``
    Liveness + the served corpus version.
``GET /metrics``
    Engine metrics as JSON; ``?format=prometheus`` (or an ``Accept:
    text/plain`` header) switches to the Prometheus text format.
``POST /v1/select``
    Body: ``{"target": ..., "m": 3, "lam": 1.0, "mu": 0.1, "scheme":
    "binary", "algorithm": "CompaReSetS+", "max_comparisons": 10,
    "min_reviews": 3}`` — every field optional.  Returns ``{"result":
    ..., "provenance": ...}``.
``POST /v1/narrow``
    The select body plus ``k``, ``time_limit`` and ``stages``.

Error mapping: malformed JSON or mistyped/unknown fields are 400;
semantically invalid requests (unknown target or algorithm, non-viable
instance) are 422; an exhausted deadline or a closed engine is 503.  An
``X-Deadline-Ms`` request header installs a per-request deadline that
propagates through the engine into every solver (the PR-1 ambient
deadline scope), so a client-side budget bounds the server-side work.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, which is exactly what the engine's single-flight cache and
micro-batcher are designed to coalesce.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.resilience.deadline import DeadlineExceeded, deadline_scope
from repro.serve.engine import (
    EngineClosed,
    InvalidRequest,
    NarrowRequest,
    SelectionEngine,
    SelectRequest,
)
from repro.serve.store import UnknownTargetError, UnviableTargetError


def encode_json(payload: object) -> bytes:
    """The canonical response encoding (sorted keys, no whitespace).

    Shared by the server and the equivalence tests so "HTTP result ==
    offline selector result" is a plain bytes comparison.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


class _BadRequest(ValueError):
    """Malformed body: not JSON, not an object, or mistyped fields (400)."""


_NUMBER = (int, float)
_SELECT_FIELDS: dict[str, tuple[type, ...]] = {
    "target": (str, type(None)),
    "m": (int,),
    "lam": _NUMBER,
    "mu": _NUMBER,
    "scheme": (str,),
    "algorithm": (str,),
    "max_comparisons": (int,),
    "min_reviews": (int,),
}
_NARROW_FIELDS: dict[str, tuple[type, ...]] = {
    **_SELECT_FIELDS,
    "k": (int,),
    "time_limit": _NUMBER,
    "stages": (list,),
}


def _parse_request(body: dict, narrow: bool) -> SelectRequest:
    """Typed field extraction; wrong shapes raise :class:`_BadRequest`."""
    fields = _NARROW_FIELDS if narrow else _SELECT_FIELDS
    unknown = sorted(set(body) - set(fields))
    if unknown:
        raise _BadRequest(f"unknown fields: {unknown}")
    kwargs: dict[str, object] = {}
    for name, value in body.items():
        expected = fields[name]
        if isinstance(value, bool) or not isinstance(value, expected):
            names = "/".join(t.__name__ for t in expected)
            raise _BadRequest(f"field {name!r} must be {names}")
        kwargs[name] = value
    if "stages" in kwargs:
        stages = kwargs["stages"]
        if not all(isinstance(stage, str) for stage in stages):
            raise _BadRequest("field 'stages' must be a list of strings")
        kwargs["stages"] = tuple(stages)
    if narrow:
        return NarrowRequest(**kwargs)
    return SelectRequest(**kwargs)


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the engine for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], engine: SelectionEngine) -> None:
        super().__init__(address, ServeHandler)
        self.engine = engine
        self.started_at = time.monotonic()


class ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # Typed for handler-side access; set by ServingHTTPServer.__init__.
    server: ServingHTTPServer

    def log_message(self, format: str, *args) -> None:
        # Access logs go to metrics, not stderr (the CLI keeps stdout for
        # the one "serving on ..." line the smoke harness parses).
        pass

    # -- plumbing ------------------------------------------------------------

    def _send(self, status: int, payload: object, content_type: str = "application/json") -> None:
        body = (
            payload if isinstance(payload, bytes) else encode_json(payload)
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self.server.engine.metrics.counter(
            "repro_http_errors_total", "error responses by status",
            labels={"status": str(status)},
        ).inc()
        self._send(status, {"error": message, "status": status})

    def _deadline_ms(self) -> float | None:
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise _BadRequest(f"X-Deadline-Ms must be a number, got {raw!r}") from None
        if value <= 0:
            raise _BadRequest(f"X-Deadline-Ms must be positive, got {raw!r}")
        return value

    def _read_body(self) -> dict:
        length = self.headers.get("Content-Length")
        try:
            size = int(length) if length is not None else 0
        except ValueError:
            raise _BadRequest("invalid Content-Length") from None
        raw = self.rfile.read(size) if size else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    # -- endpoints -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._send(
                200,
                {
                    "status": "ok",
                    "corpus_version": self.server.engine.store.version,
                    "uptime_seconds": round(
                        time.monotonic() - self.server.started_at, 3
                    ),
                },
            )
        elif url.path == "/metrics":
            query = parse_qs(url.query)
            accept = self.headers.get("Accept", "")
            wants_text = (
                query.get("format", [""])[0] == "prometheus"
                or "text/plain" in accept
            )
            if wants_text:
                self._send(
                    200,
                    self.server.engine.metrics.render_prometheus().encode(),
                    content_type="text/plain; version=0.0.4",
                )
            else:
                self._send(200, self.server.engine.metrics.as_dict())
        elif url.path in ("/v1/select", "/v1/narrow"):
            self._send_error_json(405, f"{url.path} requires POST")
        else:
            self._send_error_json(404, f"unknown endpoint {url.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path not in ("/v1/select", "/v1/narrow"):
            if url.path in ("/healthz", "/metrics"):
                self._send_error_json(405, f"{url.path} requires GET")
            else:
                self._send_error_json(404, f"unknown endpoint {url.path!r}")
            return
        narrow = url.path == "/v1/narrow"
        engine = self.server.engine
        try:
            deadline_ms = self._deadline_ms()
            request = _parse_request(self._read_body(), narrow)
            with deadline_scope(
                None if deadline_ms is None else deadline_ms / 1e3
            ):
                if narrow:
                    response = engine.narrow(request)
                else:
                    response = engine.select(request)
        except _BadRequest as exc:
            self._send_error_json(400, str(exc))
        except TypeError as exc:
            self._send_error_json(400, str(exc))
        except (InvalidRequest, UnknownTargetError, UnviableTargetError) as exc:
            self._send_error_json(422, str(exc))
        except (DeadlineExceeded, EngineClosed) as exc:
            self._send_error_json(503, str(exc))
        except Exception as exc:  # pragma: no cover - defensive backstop
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self._send(200, response.as_dict())


def make_server(
    engine: SelectionEngine, host: str = "127.0.0.1", port: int = 0
) -> ServingHTTPServer:
    """Bind (but do not start) a serving HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address`` — the end-to-end tests and the smoke target
    rely on this to avoid port collisions.
    """
    return ServingHTTPServer((host, port), engine)


def run_server(engine: SelectionEngine, host: str, port: int) -> None:
    """Blocking convenience used by ``repro-cli serve``."""
    server = make_server(engine, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        engine.close()
