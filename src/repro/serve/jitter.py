"""Deterministic seeded jitter for every Retry-After hint.

Overloaded serving emits Retry-After on three paths — admission shed
(429), drain (503), and breaker-open (503).  A constant hint
synchronizes clients: everyone shed at t returns at t+hint together,
re-overloads the server, and gets shed again — a retry herd with the
server as its metronome.  Spreading each hint by a bounded random
factor breaks the phase lock.

The randomness is a seeded PRNG stream, not wall-clock entropy: under a
fixed seed the sequence of factors is exactly reproducible, which keeps
chaos runs and load tests deterministic end to end (the chaos harness
prints the seed it used precisely so a violating run can be replayed).
Bounds are hard guarantees, not expectations: a hint of ``h`` jitters
into ``[h * (1 - spread), h * (1 + spread)]``, never negative, so
clients still get an honest order-of-magnitude signal.
"""

from __future__ import annotations

import random
import threading


class RetryJitter:
    """Bounded multiplicative jitter from a seeded PRNG stream.

    ``spread`` is the maximum relative deviation (0.25 → ±25%).
    ``spread=0`` is the identity, which is also what you get from the
    module default when jitter is not configured — existing callers and
    tests see unchanged hints unless they opt in.
    """

    def __init__(self, seed: int = 0, spread: float = 0.25) -> None:
        if not 0.0 <= spread < 1.0:
            raise ValueError(f"spread must be in [0, 1); got {spread}")
        self.seed = int(seed)
        self.spread = float(spread)
        self._random = random.Random(self.seed)
        self._lock = threading.Lock()
        self._applications = 0

    def apply(self, retry_after: float) -> float:
        """Jitter one hint; draws exactly one PRNG sample per call."""
        with self._lock:
            sample = self._random.random()
            self._applications += 1
        factor = 1.0 + self.spread * (2.0 * sample - 1.0)
        return max(0.0, retry_after * factor)

    @property
    def applications(self) -> int:
        with self._lock:
            return self._applications

    def reset(self) -> None:
        """Rewind the stream to the seed (test isolation)."""
        with self._lock:
            self._random = random.Random(self.seed)
            self._applications = 0


#: Identity jitter used wherever none is configured.
NO_JITTER = RetryJitter(seed=0, spread=0.0)
