"""Lightweight serving metrics: counters, gauges, reservoir histograms.

No third-party client library — the serving subsystem is stdlib-only by
design — but the exposition formats are standard: :meth:`MetricsRegistry.as_dict`
renders JSON for dashboards/tests and :meth:`MetricsRegistry.render_prometheus`
renders the Prometheus text format, so an off-the-shelf scraper can consume
``GET /metrics?format=prometheus`` unchanged.

Histograms keep a bounded uniform sample (Vitter's Algorithm R) instead of
every observation, so latency percentiles stay O(1) memory under sustained
traffic.  The reservoir RNG is seeded per histogram: two runs observing the
same sequence report the same percentiles, which keeps the benchmark
artifacts comparable across PRs.
"""

from __future__ import annotations

import random
import threading
from bisect import insort
from collections.abc import Callable, Mapping


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value backed by a zero-arg callable.

    Callable-backed gauges let the registry expose derived state (cache
    hit ratio, inflight solves) without the owner pushing updates.
    """

    def __init__(
        self,
        name: str,
        read: Callable[[], float],
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._read = read

    @property
    def value(self) -> float:
        return float(self._read())


class Histogram:
    """Count/sum plus percentile estimates from a bounded reservoir."""

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        reservoir_size: int = 1024,
        seed: int = 7,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._size = reservoir_size
        self._rng = random.Random(seed)
        self._sample: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if len(self._sample) < self._size:
                insort(self._sample, value)
            else:
                # Algorithm R: keep each of the n observations with
                # probability size/n by overwriting a uniform slot.
                slot = self._rng.randrange(self._count)
                if slot < self._size:
                    del self._sample[slot]
                    insort(self._sample, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]) of the sampled values."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            if not self._sample:
                return 0.0
            index = min(
                len(self._sample) - 1, int(q / 100.0 * (len(self._sample) - 1))
            )
            return self._sample[index]

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A named collection of metrics with JSON + Prometheus renderings."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Mapping[str, str] | None) -> str:
        return name + _render_labels(labels or {})

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        """Get or create the counter ``name`` (+ labels)."""
        key = self._key(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, help, labels)
            return self._counters[key]

    def gauge(
        self,
        name: str,
        read: Callable[[], float],
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        """Register (or replace) the callable-backed gauge ``name``."""
        key = self._key(name, labels)
        with self._lock:
            self._gauges[key] = Gauge(name, read, help, labels)
            return self._gauges[key]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        reservoir_size: int = 1024,
    ) -> Histogram:
        """Get or create the histogram ``name`` (+ labels)."""
        key = self._key(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(
                    name, help, labels, reservoir_size=reservoir_size
                )
            return self._histograms[key]

    def as_dict(self) -> dict[str, object]:
        """All metrics as one JSON-ready mapping."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {key: metric.value for key, metric in counters},
            "gauges": {key: metric.value for key, metric in gauges},
            "histograms": {key: metric.snapshot() for key, metric in histograms},
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        lines: list[str] = []
        seen_headers: set[str] = set()

        def header(name: str, kind: str, help: str) -> None:
            if name in seen_headers:
                return
            seen_headers.add(name)
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")

        for counter in counters:
            header(counter.name, "counter", counter.help)
            lines.append(
                f"{counter.name}{_render_labels(counter.labels)} {counter.value}"
            )
        for gauge in gauges:
            header(gauge.name, "gauge", gauge.help)
            lines.append(f"{gauge.name}{_render_labels(gauge.labels)} {gauge.value}")
        for histogram in histograms:
            header(histogram.name, "summary", histogram.help)
            for q in (0.5, 0.95, 0.99):
                labels = dict(histogram.labels)
                labels["quantile"] = f"{q}"
                lines.append(
                    f"{histogram.name}{_render_labels(labels)} "
                    f"{histogram.percentile(q * 100)}"
                )
            suffix = _render_labels(histogram.labels)
            lines.append(f"{histogram.name}_sum{suffix} {histogram.sum}")
            lines.append(f"{histogram.name}_count{suffix} {histogram.count}")
        return "\n".join(lines) + "\n"
