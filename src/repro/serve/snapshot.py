"""Atomic generation snapshots: restart = snapshot-load + WAL-replay.

A snapshot captures one :class:`~repro.serve.store.ItemStore` generation
completely enough that a restarted process reproduces it *byte-identically*
— same ``g{N}-{fingerprint}`` version string, same chain epochs — without
re-walking the corpus:

* ``MANIFEST.json`` — version, generation counter, lineage, per-product
  delta epochs, the WAL sequence number the snapshot covers, and a CRC32
  per payload file;
* ``corpus.pkl`` — the pickled ``(name, products, reviews)`` triple
  (same-process-family restore; orders of magnitude faster than
  re-parsing JSONL);
* ``artifact-NNN.npz`` — one file per memoised
  :class:`~repro.serve.store.InstanceArtifacts`: gamma, per-item taus and
  regression columns, per-item opinion/aspect incidence matrices and the
  base Gram blocks.  On restore these are injected into
  :class:`~repro.core.omp_kernel.SolverArtifacts`, skipping the
  tokenised-corpus walks and Gram matmuls that dominate cold ingest.

Write protocol: everything is staged into a hidden temp directory in the
snapshot root, every file fsynced, then the directory is atomically
``os.replace``d to its final ``snap-NNNNNNNN`` name and the root fsynced.
A crash mid-save leaves a ``.tmp-*`` orphan (swept on the next save) and
the previous snapshots untouched.  Load walks snapshots newest-first and
falls back on checksum/parse failure — a corrupt latest snapshot costs
the deltas since the previous one, which the WAL still has.

:func:`open_durable_store` is the recovery entry point the supervisor and
CLI use: snapshot-load, WAL-replay, and provenance in one call.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.corpus import Corpus
from repro.data.io import load_corpus
from repro.core.vectors import OpinionScheme
from repro.resilience.atomicio import checksum, fsync_directory
from repro.serve.store import ItemStore
from repro.serve.wal import WriteAheadLog, review_from_record

_MANIFEST = "MANIFEST.json"
_CORPUS = "corpus.pkl"
_FORMAT = 1


class SnapshotError(RuntimeError):
    """Base class for snapshot failures."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot failed its checksum or structural validation."""


@dataclass(frozen=True, slots=True)
class SnapshotInfo:
    """Identity of one on-disk snapshot."""

    path: Path
    version: str
    loads: int
    wal_seq: int
    artifacts: int


@dataclass(slots=True)
class RecoveryInfo:
    """Provenance of one durable-store open, for /healthz and metrics.

    ``mode`` is ``cold`` (no usable snapshot; full corpus ingest),
    ``cold+wal`` (cold ingest plus replayed deltas), ``snapshot``
    (snapshot only, empty WAL tail), or ``snapshot+wal`` (snapshot plus
    replayed deltas).
    """

    mode: str
    version: str
    replayed_deltas: int = 0
    replayed_reviews: int = 0
    snapshot_version: str | None = None
    snapshots_skipped: int = 0
    restored_artifacts: int = 0
    wal_torn_tail_bytes: int = 0
    restarts: int = 0
    errors: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "version": self.version,
            "replayed_deltas": self.replayed_deltas,
            "replayed_reviews": self.replayed_reviews,
            "snapshot_version": self.snapshot_version,
            "snapshots_skipped": self.snapshots_skipped,
            "restored_artifacts": self.restored_artifacts,
            "wal_torn_tail_bytes": self.wal_torn_tail_bytes,
            "restarts": self.restarts,
            "errors": list(self.errors),
        }


def _npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


class SnapshotManager:
    """Writes, prunes, and restores atomic generation snapshots."""

    def __init__(self, root: str | Path, *, keep: int = 2) -> None:
        self.root = Path(root)
        self.keep = max(1, int(keep))

    # -- enumeration ---------------------------------------------------------

    def list_snapshots(self) -> list[Path]:
        """Snapshot directories, oldest first."""
        if not self.root.exists():
            return []
        return sorted(
            p for p in self.root.iterdir()
            if p.is_dir() and p.name.startswith("snap-")
        )

    # -- save ----------------------------------------------------------------

    def save(self, store: ItemStore, *, wal_seq: int) -> SnapshotInfo:
        """Persist the store's current generation; returns its identity.

        Atomic at directory granularity: a crash anywhere during the
        save leaves prior snapshots untouched and at worst a temp orphan
        that the next save sweeps.  ``wal_seq`` is the highest WAL
        sequence number whose delta is *included* in this generation —
        recovery replays strictly newer records on top.
        """
        loads, lineage, epochs = store.chain_state()
        corpus = store.corpus
        version = store.version
        exported = store.export_artifacts()

        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_orphans()
        staging = Path(
            tempfile.mkdtemp(dir=self.root, prefix=".tmp-snap-")
        )
        try:
            files: dict[str, int] = {}
            corpus_blob = pickle.dumps(
                (corpus.name, tuple(corpus.products), tuple(corpus.reviews)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            files[_CORPUS] = self._write(staging / _CORPUS, corpus_blob)

            artifact_entries = []
            for index, (key, artifacts) in enumerate(exported):
                name = f"artifact-{index:03d}.npz"
                arrays: dict[str, np.ndarray] = {"gamma": artifacts.gamma}
                for item, tau in enumerate(artifacts.taus):
                    arrays[f"tau_{item}"] = tau
                for item, cols in enumerate(artifacts.columns):
                    arrays[f"col_{item}"] = cols
                for item, solver in enumerate(artifacts.solver):
                    arrays[f"op_{item}"] = solver._opinion
                    arrays[f"asp_{item}"] = solver._aspect
                    base = solver.base_block()
                    arrays[f"gop_{item}"] = base.gram_op
                    arrays[f"gasp_{item}"] = base.gram_asp
                files[name] = self._write(staging / name, _npz_bytes(arrays))
                target, max_comparisons, min_reviews, scheme, lam = key
                artifact_entries.append(
                    {
                        "file": name,
                        "target": target,
                        "max_comparisons": max_comparisons,
                        "min_reviews": min_reviews,
                        "scheme": scheme,
                        "lam": lam,
                        "items": len(artifacts.taus),
                    }
                )

            manifest = {
                "format": _FORMAT,
                "version": version,
                "loads": loads,
                "lineage": lineage,
                "epochs": epochs,
                "wal_seq": int(wal_seq),
                "checksums": files,
                "artifacts": artifact_entries,
                "products": len(corpus.products),
                "reviews": len(corpus.reviews),
            }
            self._write(
                staging / _MANIFEST,
                json.dumps(manifest, indent=2, sort_keys=True).encode(),
            )
            fsync_directory(staging)
            final = self.root / f"snap-{loads:08d}"
            if final.exists():  # re-snapshot of the same generation
                shutil.rmtree(final)
            os.replace(staging, final)
            fsync_directory(self.root)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._prune()
        return SnapshotInfo(
            path=final,
            version=version,
            loads=loads,
            wal_seq=int(wal_seq),
            artifacts=len(exported),
        )

    @staticmethod
    def _write(path: Path, data: bytes) -> int:
        with path.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return checksum(data)

    def _sweep_orphans(self) -> None:
        for orphan in self.root.glob(".tmp-snap-*"):
            shutil.rmtree(orphan, ignore_errors=True)

    def _prune(self) -> None:
        snapshots = self.list_snapshots()
        for stale in snapshots[: -self.keep]:
            shutil.rmtree(stale, ignore_errors=True)

    # -- load ----------------------------------------------------------------

    def _read_verified(self, path: Path, expected_crc: int) -> bytes:
        data = path.read_bytes()
        if checksum(data) != expected_crc:
            raise SnapshotCorruptError(f"{path}: checksum mismatch")
        return data

    def load_snapshot(self, path: Path) -> tuple[ItemStore, dict]:
        """Restore one snapshot directory into a fresh ItemStore.

        Raises :class:`SnapshotCorruptError` on any checksum, structure,
        or version-identity failure — the caller falls back to an older
        snapshot rather than serving questionable state.
        """
        manifest_path = path / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotCorruptError(f"{manifest_path}: {exc}") from exc
        if manifest.get("format") != _FORMAT:
            raise SnapshotCorruptError(
                f"{path}: unsupported snapshot format {manifest.get('format')!r}"
            )
        checksums = manifest.get("checksums", {})
        try:
            corpus_blob = self._read_verified(
                path / _CORPUS, int(checksums[_CORPUS])
            )
            name, products, reviews = pickle.loads(corpus_blob)
            corpus = Corpus(name, products, reviews)
            store = ItemStore.restore(
                corpus,
                loads=int(manifest["loads"]),
                lineage=str(manifest["lineage"]),
                epochs=manifest.get("epochs", {}),
                expected_version=str(manifest["version"]),
            )
        except SnapshotCorruptError:
            raise
        except Exception as exc:
            raise SnapshotCorruptError(f"{path}: {exc}") from exc

        restored = 0
        for entry in manifest.get("artifacts", ()):
            try:
                blob = self._read_verified(
                    path / entry["file"], int(checksums[entry["file"]])
                )
                with np.load(io.BytesIO(blob)) as arrays:
                    items = int(entry["items"])
                    store.restore_artifacts(
                        entry["target"],
                        entry["max_comparisons"],
                        int(entry["min_reviews"]),
                        OpinionScheme(entry["scheme"]),
                        float(entry["lam"]),
                        gamma=arrays["gamma"],
                        taus=[arrays[f"tau_{i}"] for i in range(items)],
                        columns=[arrays[f"col_{i}"] for i in range(items)],
                        incidence=[
                            (arrays[f"op_{i}"], arrays[f"asp_{i}"])
                            for i in range(items)
                        ],
                        base_grams=[
                            (arrays[f"gop_{i}"], arrays[f"gasp_{i}"])
                            for i in range(items)
                        ],
                    )
                restored += 1
            except SnapshotCorruptError:
                raise
            except Exception as exc:
                raise SnapshotCorruptError(
                    f"{path}/{entry.get('file')}: {exc}"
                ) from exc
        manifest["_restored_artifacts"] = restored
        return store, manifest


def open_durable_store(
    state_dir: str | Path,
    *,
    corpus_path: str | Path | None = None,
    keep_snapshots: int = 2,
    wal_fsync: bool = True,
) -> tuple[ItemStore, WriteAheadLog, SnapshotManager, RecoveryInfo]:
    """Open (or recover) the durable serving state under ``state_dir``.

    Recovery order: newest intact snapshot, then WAL records newer than
    the snapshot's watermark, replayed in sequence order.  With no
    usable snapshot, the corpus is cold-loaded from ``corpus_path`` and
    the *entire* WAL replays on top.  Corrupt snapshots are skipped
    (recorded in the provenance) — never trusted, never deleted here.

    A delta that was fsynced but never acknowledged (crash inside the
    ack window) legally reappears after recovery; nothing acknowledged
    is ever lost.  Duplicate replay against a snapshot that already
    contains a delta cannot happen because the watermark is recorded at
    save time, but replay still tolerates it defensively.
    """
    from repro.serve.store import DeltaValidationError

    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    wal = WriteAheadLog(state_dir / "ingest.wal", fsync=wal_fsync)
    manager = SnapshotManager(state_dir / "snapshots", keep=keep_snapshots)

    store: ItemStore | None = None
    info = RecoveryInfo(mode="cold", version="")
    wal_seq = 0
    for snapshot_path in reversed(manager.list_snapshots()):
        try:
            store, manifest = manager.load_snapshot(snapshot_path)
        except SnapshotCorruptError as exc:
            info.snapshots_skipped += 1
            info.errors.append(str(exc))
            continue
        info.mode = "snapshot"
        info.snapshot_version = manifest["version"]
        info.restored_artifacts = manifest.get("_restored_artifacts", 0)
        wal_seq = int(manifest.get("wal_seq", 0))
        break

    if store is None:
        if corpus_path is None:
            raise SnapshotError(
                f"{state_dir}: no usable snapshot and no corpus_path to "
                "cold-load from"
            )
        store = ItemStore(load_corpus(corpus_path))

    for seq, payload in wal.replay(after_seq=wal_seq):
        if payload.get("kind") != "delta":
            continue
        try:
            reviews = [review_from_record(r) for r in payload.get("reviews", ())]
            outcome = store.apply_delta(reviews)
        except (DeltaValidationError, ValueError) as exc:
            # Defensive: a record the live path acknowledged can never be
            # invalid against the state it was validated on; surviving a
            # duplicate here beats refusing to start.
            info.errors.append(f"wal seq {seq}: {exc}")
            continue
        info.replayed_deltas += 1
        info.replayed_reviews += outcome.added
        if info.mode == "snapshot":
            info.mode = "snapshot+wal"
        elif info.mode == "cold":
            info.mode = "cold+wal"

    info.version = store.version
    info.wal_torn_tail_bytes = wal.stats().torn_tail_bytes
    return store, wal, manager, info
