"""Precomputed per-instance artifact store for online serving.

The batch CLI rebuilds everything per invocation: parse the corpus,
resolve the comparison instance, derive the vector space, tau/Gamma
targets, and per-review incidence matrices, then solve.  Online, only the
*solve* should be per-request work — the rest is a pure function of the
corpus and a handful of shaping parameters, so :class:`ItemStore` ingests
the corpus once and memoises those artifacts behind versioned keys.

Versioning: every (re)load bumps a monotonic generation counter and
recomputes a content fingerprint; :attr:`ItemStore.version` concatenates
the two.  Cache keys that embed the version (the engine's result cache
does) can therefore never serve artifacts from a previous corpus, and
:meth:`ItemStore.reload` explicitly drops every memoised artifact.

Artifacts are immutable from the caller's perspective: the store hands
out the same :class:`InstanceArtifacts` object for repeated lookups, and
callers must not mutate the contained arrays (the memoised
:class:`~repro.core.vectors.VectorSpace` incidences are shared).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.omp_kernel import SolverArtifacts
from repro.core.problem import SelectionConfig
from repro.core.vectors import OpinionScheme, VectorSpace, regression_columns
from repro.data.corpus import Corpus
from repro.data.instances import ComparisonInstance, build_instance
from repro.data.io import load_corpus


class UnknownTargetError(LookupError):
    """The requested target product is not in the corpus."""


class UnviableTargetError(LookupError):
    """The target exists but yields no comparison instance (too few
    reviews or no usable comparative items)."""


class CorpusValidationError(ValueError):
    """A candidate corpus failed pre-swap validation (HTTP 409).

    Raised by :meth:`ItemStore.safe_reload` *before* any swap happens,
    so the store keeps serving the previous generation unchanged — the
    rollback is that no roll-forward ever occurred.
    """


class ReloadInProgress(RuntimeError):
    """Another validated reload is still running (HTTP 409)."""


@dataclass(frozen=True)
class InstanceArtifacts:
    """Everything precomputable for one (instance, scheme, lambda) triple.

    ``taus[i]`` is the full-collection opinion distribution tau_i of item
    i, ``gamma`` the target item's aspect distribution Gamma, and
    ``columns[i]`` the stacked Eq.-4 regression matrix of item i (opinion
    block over the lambda-scaled aspect block) — the same construction the
    offline selectors use via
    :func:`~repro.core.vectors.regression_columns`.  ``space`` carries the
    per-review incidence memoisation, so repeated solves against the same
    artifacts skip the tokenised-corpus walk entirely.  ``solver[i]`` is
    item i's Batch-OMP :class:`~repro.core.omp_kernel.SolverArtifacts`
    (dedup groups, unique columns, Gram blocks): warm requests skip dedup
    + Gram entirely, and the CompaReSetS+ per-``mu`` sync blocks memoise
    inside it on first use.  Like everything here, it is versioned with
    the store generation and dropped wholesale on reload.
    """

    version: str
    instance: ComparisonInstance
    space: VectorSpace
    gamma: np.ndarray
    taus: tuple[np.ndarray, ...]
    columns: tuple[np.ndarray, ...]
    solver: tuple[SolverArtifacts, ...] = ()

    @property
    def comparative_ids(self) -> tuple[str, ...]:
        """Product ids of the comparative items p_2..p_n."""
        return tuple(p.product_id for p in self.instance.comparatives)


@dataclass(frozen=True, slots=True)
class _InstanceKey:
    target: str
    max_comparisons: int | None
    min_reviews: int


@dataclass(frozen=True, slots=True)
class _ArtifactKey:
    instance_key: _InstanceKey
    scheme: OpinionScheme
    lam: float


@dataclass
class _Generation:
    """One loaded corpus plus its memoised artifacts (dropped on reload)."""

    corpus: Corpus
    version: str
    instances: dict[_InstanceKey, ComparisonInstance | None] = field(
        default_factory=dict
    )
    artifacts: dict[_ArtifactKey, InstanceArtifacts] = field(default_factory=dict)


def corpus_fingerprint(corpus: Corpus) -> str:
    """A short content hash of the corpus identity.

    Hashes product ids (with their also-bought lists) and review ids —
    the facts that determine instance construction — rather than full
    review texts, so fingerprinting a million-review corpus stays cheap.
    """
    digest = hashlib.sha256()
    digest.update(corpus.name.encode())
    for product in corpus.products:
        digest.update(product.product_id.encode())
        for other in product.also_bought:
            digest.update(other.encode())
        digest.update(b"|")
    for review in corpus.reviews:
        digest.update(review.review_id.encode())
    return digest.hexdigest()[:12]


class ItemStore:
    """Versioned, thread-safe store of precomputed selection artifacts."""

    def __init__(self, corpus: Corpus) -> None:
        self._lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._loads = 0
        self._generation = self._ingest(corpus)

    @classmethod
    def from_path(cls, path: str | Path) -> "ItemStore":
        """Load a JSONL corpus file and ingest it."""
        return cls(load_corpus(path))

    def _ingest(self, corpus: Corpus) -> _Generation:
        self._loads += 1
        version = f"g{self._loads}-{corpus_fingerprint(corpus)}"
        return _Generation(corpus=corpus, version=version)

    # -- corpus access -------------------------------------------------------

    @property
    def corpus(self) -> Corpus:
        with self._lock:
            return self._generation.corpus

    @property
    def version(self) -> str:
        """Generation counter + content fingerprint, e.g. ``"g1-ab12cd34ef56"``."""
        with self._lock:
            return self._generation.version

    def reload(self, corpus: Corpus) -> str:
        """Swap in a new corpus; invalidates every memoised artifact.

        Returns the new version.  Lookups that raced the reload finish
        against the old generation's (still immutable) artifacts; their
        version string marks them as stale for any versioned cache.
        """
        generation = self._ingest(corpus)
        with self._lock:
            self._generation = generation
        return generation.version

    def validate_corpus(
        self,
        corpus: Corpus,
        *,
        max_comparisons: int | None = 10,
        min_reviews: int = 3,
    ) -> str:
        """Check that ``corpus`` is actually servable; return its fingerprint.

        Validation is the cheap end-to-end path a first request would
        take: non-empty corpus, computable content fingerprint, at least
        one viable comparison instance under the default shaping
        parameters, and a solvable smoke selection (greedy, ``m=1``) on
        that instance.  Raises :class:`CorpusValidationError` with the
        specific failure; never touches the store's served generation.
        """
        from repro.core.selection import make_selector

        if not corpus.products:
            raise CorpusValidationError("corpus has no products")
        if not corpus.reviews:
            raise CorpusValidationError("corpus has no reviews")
        fingerprint = corpus_fingerprint(corpus)
        instance = None
        for product in corpus.products:
            instance = build_instance(
                corpus,
                product.product_id,
                max_comparisons=max_comparisons,
                min_reviews=min_reviews,
            )
            if instance is not None:
                break
        if instance is None:
            raise CorpusValidationError(
                "corpus has no viable comparison instance "
                f"(needs >= {min_reviews} reviews and a comparable item)"
            )
        smoke = SelectionConfig(
            max_reviews=1, lam=1.0, mu=0.1, scheme=OpinionScheme.BINARY
        )
        try:
            make_selector("CompaReSetS_Greedy").select(instance, smoke)
        except Exception as exc:
            raise CorpusValidationError(
                f"smoke selection failed on target "
                f"{instance.target.product_id!r}: {type(exc).__name__}: {exc}"
            ) from exc
        return fingerprint

    def safe_reload(self, corpus: Corpus) -> str:
        """Validate ``corpus``, then atomically swap it in; return the version.

        The old generation keeps serving (lock-free for readers already
        holding its artifacts) throughout validation — a corpus that
        fails raises :class:`CorpusValidationError` and leaves the store
        exactly as it was.  Only one validated reload may run at a time;
        a second concurrent call raises :class:`ReloadInProgress` rather
        than queueing behind a potentially slow validation.
        """
        if not self._reload_lock.acquire(blocking=False):
            raise ReloadInProgress("another corpus reload is still validating")
        try:
            self.validate_corpus(corpus)
            return self.reload(corpus)
        finally:
            self._reload_lock.release()

    def default_target(self, max_comparisons: int | None, min_reviews: int) -> str:
        """The first viable target product id (the CLI's default choice)."""
        with self._lock:
            generation = self._generation
        for product in generation.corpus.products:
            instance = self._instance_for(
                generation,
                _InstanceKey(product.product_id, max_comparisons, min_reviews),
            )
            if instance is not None:
                return product.product_id
        raise UnviableTargetError("no viable target item in the corpus")

    # -- artifact lookup -----------------------------------------------------

    def _instance_for(
        self, generation: _Generation, key: _InstanceKey
    ) -> ComparisonInstance | None:
        with self._lock:
            if key in generation.instances:
                return generation.instances[key]
        if not generation.corpus.has_product(key.target):
            raise UnknownTargetError(
                f"target {key.target!r} is not in the corpus"
            )
        instance = build_instance(
            generation.corpus,
            key.target,
            max_comparisons=key.max_comparisons,
            min_reviews=key.min_reviews,
        )
        with self._lock:
            generation.instances.setdefault(key, instance)
            return generation.instances[key]

    def artifacts(
        self,
        target: str,
        config: SelectionConfig,
        max_comparisons: int | None = 10,
        min_reviews: int = 3,
    ) -> InstanceArtifacts:
        """The precomputed artifacts for ``target`` under ``config``.

        Raises :class:`UnknownTargetError` / :class:`UnviableTargetError`
        for targets that cannot form an instance.  Only ``config.scheme``
        and ``config.lam`` shape the artifacts; ``m`` and ``mu`` vary per
        request without invalidating anything.
        """
        with self._lock:
            generation = self._generation
        instance_key = _InstanceKey(target, max_comparisons, min_reviews)
        artifact_key = _ArtifactKey(instance_key, config.scheme, config.lam)
        with self._lock:
            cached = generation.artifacts.get(artifact_key)
        if cached is not None:
            return cached

        instance = self._instance_for(generation, instance_key)
        if instance is None:
            raise UnviableTargetError(
                f"target {target!r} is not a viable instance "
                f"(needs >= {min_reviews} reviews and a comparable item)"
            )
        space = VectorSpace(instance.aspect_vocabulary(), config.scheme)
        gamma = space.aspect_vector(instance.reviews[0])
        taus = tuple(space.opinion_vector(reviews) for reviews in instance.reviews)
        columns = tuple(
            regression_columns(space, reviews, config.lam)
            for reviews in instance.reviews
        )
        solver = tuple(
            SolverArtifacts(space, reviews, config.lam)
            for reviews in instance.reviews
        )
        built = InstanceArtifacts(
            version=generation.version,
            instance=instance,
            space=space,
            gamma=gamma,
            taus=taus,
            columns=columns,
            solver=solver,
        )
        with self._lock:
            # First build wins so every caller shares one artifact object
            # (and one memoised VectorSpace).
            generation.artifacts.setdefault(artifact_key, built)
            return generation.artifacts[artifact_key]

    def stats(self) -> dict[str, int | str]:
        """Introspection for ``/metrics``: artifact/instance cache sizes."""
        with self._lock:
            generation = self._generation
            return {
                "version": generation.version,
                "products": len(generation.corpus.products),
                "reviews": len(generation.corpus.reviews),
                "cached_instances": len(generation.instances),
                "cached_artifacts": len(generation.artifacts),
                "loads": self._loads,
            }
