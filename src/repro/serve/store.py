"""Precomputed per-instance artifact store for online serving.

The batch CLI rebuilds everything per invocation: parse the corpus,
resolve the comparison instance, derive the vector space, tau/Gamma
targets, and per-review incidence matrices, then solve.  Online, only the
*solve* should be per-request work — the rest is a pure function of the
corpus and a handful of shaping parameters, so :class:`ItemStore` ingests
the corpus once and memoises those artifacts behind versioned keys.

Versioning: every (re)load bumps a monotonic generation counter and
recomputes a content fingerprint; :attr:`ItemStore.version` concatenates
the two.  Cache keys that embed the version (the engine's result cache
does) can therefore never serve artifacts from a previous corpus, and
:meth:`ItemStore.reload` explicitly drops every memoised artifact.

Artifacts are immutable from the caller's perspective: the store hands
out the same :class:`InstanceArtifacts` object for repeated lookups, and
callers must not mutate the contained arrays (the memoised
:class:`~repro.core.vectors.VectorSpace` incidences are shared).
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.omp_kernel import SolverArtifacts
from repro.core.problem import SelectionConfig
from repro.core.vectors import OpinionScheme, VectorSpace, regression_columns
from repro.data.corpus import Corpus
from repro.data.instances import ComparisonInstance, build_instance
from repro.data.io import load_corpus
from repro.data.models import Review

logger = logging.getLogger(__name__)


class UnknownTargetError(LookupError):
    """The requested target product is not in the corpus."""


class UnviableTargetError(LookupError):
    """The target exists but yields no comparison instance (too few
    reviews or no usable comparative items)."""


class CorpusValidationError(ValueError):
    """A candidate corpus failed pre-swap validation (HTTP 409).

    Raised by :meth:`ItemStore.safe_reload` *before* any swap happens,
    so the store keeps serving the previous generation unchanged — the
    rollback is that no roll-forward ever occurred.
    """


class ReloadInProgress(RuntimeError):
    """Another validated reload is still running (HTTP 409)."""


class DeltaValidationError(ValueError):
    """A review delta failed validation (HTTP 400/409).

    Raised by :meth:`ItemStore.apply_delta` *before* any state changes,
    so a rejected delta leaves the served generation untouched.  The
    ``conflict`` flag distinguishes malformed input (400) from input
    that is well-formed but clashes with current state — a duplicate
    review id, typically a retry of an already-applied delta (409).
    """

    def __init__(self, message: str, *, conflict: bool = False) -> None:
        super().__init__(message)
        self.conflict = conflict


@dataclass(frozen=True, slots=True)
class DeltaOutcome:
    """Result of one applied review delta.

    ``patched`` / ``rebuilt`` count memoised artifacts whose candidate
    set touched an affected product: patched ones were extended in place
    via the bordered-Gram path, rebuilt ones were dropped for a lazy cold
    rebuild (candidate-set or vocabulary change, or a patch-verify
    mismatch — the latter also counted in ``verify_failures``).
    ``patch_ms`` is the wall time of the whole carry-over pass.
    """

    version: str
    affected: tuple[str, ...]
    added: int
    patched: int = 0
    rebuilt: int = 0
    verify_failures: int = 0
    patch_ms: float = 0.0


@dataclass(frozen=True)
class InstanceArtifacts:
    """Everything precomputable for one (instance, scheme, lambda) triple.

    ``taus[i]`` is the full-collection opinion distribution tau_i of item
    i, ``gamma`` the target item's aspect distribution Gamma, and
    ``columns[i]`` the stacked Eq.-4 regression matrix of item i (opinion
    block over the lambda-scaled aspect block) — the same construction the
    offline selectors use via
    :func:`~repro.core.vectors.regression_columns`.  ``space`` carries the
    per-review incidence memoisation, so repeated solves against the same
    artifacts skip the tokenised-corpus walk entirely.  ``solver[i]`` is
    item i's Batch-OMP :class:`~repro.core.omp_kernel.SolverArtifacts`
    (dedup groups, unique columns, Gram blocks): warm requests skip dedup
    + Gram entirely, and the CompaReSetS+ per-``mu`` sync blocks memoise
    inside it on first use.  Like everything here, it is versioned with
    the store generation and dropped wholesale on reload.
    """

    version: str
    instance: ComparisonInstance
    space: VectorSpace
    gamma: np.ndarray
    taus: tuple[np.ndarray, ...]
    columns: tuple[np.ndarray, ...]
    solver: tuple[SolverArtifacts, ...] = ()
    chain: tuple = ()

    @property
    def comparative_ids(self) -> tuple[str, ...]:
        """Product ids of the comparative items p_2..p_n."""
        return tuple(p.product_id for p in self.instance.comparatives)

    @property
    def chain_token(self) -> str:
        """The generation chain as a flat string, for cross-process keys.

        ``chain`` is ``(lineage, ((product_id, epoch), ...))``: the
        lineage names the full corpus load this generation descends
        from, and each ``(product_id, epoch)`` pair counts how many
        deltas have touched that product since.  A cache entry keyed on
        this token stays valid across deltas to *other* products and
        across restarts (deterministic WAL replay reproduces the same
        lineage and epochs), but can never be served after a delta to
        any product in its instance.
        """
        lineage, epochs = self.chain if self.chain else ("", ())
        pairs = ",".join(f"{pid}:{epoch}" for pid, epoch in epochs)
        return f"{lineage}|{pairs}"


@dataclass(frozen=True, slots=True)
class _InstanceKey:
    target: str
    max_comparisons: int | None
    min_reviews: int


@dataclass(frozen=True, slots=True)
class _ArtifactKey:
    instance_key: _InstanceKey
    scheme: OpinionScheme
    lam: float


@dataclass
class _Generation:
    """One loaded corpus plus its memoised artifacts (dropped on reload).

    ``lineage`` is the version string of the *full corpus load* this
    generation descends from; review deltas produce new generations that
    keep the lineage and bump per-product ``epochs`` instead.  The pair
    feeds :attr:`InstanceArtifacts.chain`, which is what the engine's
    result cache keys on — so a delta invalidates only cache entries
    whose instance contains an affected product, while a full reload
    (new lineage) invalidates everything.
    """

    corpus: Corpus
    version: str
    lineage: str = ""
    epochs: dict[str, int] = field(default_factory=dict)
    review_ids: frozenset[str] | None = None
    instances: dict[_InstanceKey, ComparisonInstance | None] = field(
        default_factory=dict
    )
    artifacts: dict[_ArtifactKey, InstanceArtifacts] = field(default_factory=dict)


def corpus_fingerprint(corpus: Corpus) -> str:
    """A short content hash of the corpus identity.

    Hashes product ids (with their also-bought lists) and review ids —
    the facts that determine instance construction — rather than full
    review texts, so fingerprinting a million-review corpus stays cheap.
    """
    digest = hashlib.sha256()
    digest.update(corpus.name.encode())
    for product in corpus.products:
        digest.update(product.product_id.encode())
        for other in product.also_bought:
            digest.update(other.encode())
        digest.update(b"|")
    for review in corpus.reviews:
        digest.update(review.review_id.encode())
    return digest.hexdigest()[:12]


def delta_fingerprint(previous_version: str, reviews: Sequence[Review]) -> str:
    """Lineage-chained fingerprint of a delta generation.

    Hashes the previous generation's *version string* plus the canonical
    identity of the delta batch (review and product ids, in batch order),
    so computing a successor fingerprint is O(delta) instead of the full
    :func:`corpus_fingerprint` rehash.  Deterministic by construction:
    replaying the same delta sequence from the same starting generation
    (WAL replay, replica convergence) reproduces the same chain of
    version strings.
    """
    digest = hashlib.sha256()
    digest.update(previous_version.encode())
    for review in reviews:
        digest.update(b"\x00")
        digest.update(review.review_id.encode())
        digest.update(b"\x1f")
        digest.update(review.product_id.encode())
    return digest.hexdigest()[:12]


def _patch_mismatch(
    patched: InstanceArtifacts, cold: InstanceArtifacts
) -> str | None:
    """Where ``patched`` diverges from ``cold`` byte-for-byte, or None.

    The comparison forces the lazy Gram blocks on both sides, so verify
    mode trades the patch's laziness for a full cross-check — that is the
    point of the mode.
    """
    if patched.gamma.tobytes() != cold.gamma.tobytes():
        return "gamma"
    if len(patched.taus) != len(cold.taus):
        return "tau count"
    for index, (left, right) in enumerate(zip(patched.taus, cold.taus)):
        if left.tobytes() != right.tobytes():
            return f"tau[{index}]"
    for index, (left, right) in enumerate(zip(patched.columns, cold.columns)):
        if left.shape != right.shape or left.tobytes() != right.tobytes():
            return f"columns[{index}]"
    for index, (ours, theirs) in enumerate(zip(patched.solver, cold.solver)):
        if ours._opinion.tobytes() != theirs._opinion.tobytes():
            return f"solver[{index}].opinion"
        if ours._aspect.tobytes() != theirs._aspect.tobytes():
            return f"solver[{index}].aspect"
        where = _block_mismatch(ours.base_block(), theirs.base_block())
        if where is not None:
            return f"solver[{index}].base.{where}"
        with ours._lock:
            mus = sorted(ours._plus)
        for mu in mus:
            where = _block_mismatch(
                ours.plus_block(mu), theirs.plus_block(mu)
            )
            if where is not None:
                return f"solver[{index}].plus[{mu}].{where}"
    return None


def _block_mismatch(patched, cold) -> str | None:
    if patched.groups != cold.groups:
        return "groups"
    if not np.array_equal(patched.capacities, cold.capacities):
        return "capacities"
    if not np.array_equal(patched.column_group, cold.column_group):
        return "column_group"
    if patched._dedup_matrix.tobytes() != cold._dedup_matrix.tobytes():
        return "dedup_matrix"
    if patched.unique_opinion.tobytes() != cold.unique_opinion.tobytes():
        return "unique_opinion"
    if patched.unique_aspect.tobytes() != cold.unique_aspect.tobytes():
        return "unique_aspect"
    if patched.gram_op.tobytes() != cold.gram_op.tobytes():
        return "gram_op"
    if patched.gram_asp.tobytes() != cold.gram_asp.tobytes():
        return "gram_asp"
    return None


class ItemStore:
    """Versioned, thread-safe store of precomputed selection artifacts."""

    def __init__(self, corpus: Corpus) -> None:
        self._lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._loads = 0
        #: When True, every artifact patched by a delta is cross-checked
        #: byte-for-byte against a cold build of the new generation; a
        #: mismatch logs loudly and serves the cold build instead.
        self.patch_verify = False
        self._generation = self._ingest(corpus)

    @classmethod
    def from_path(cls, path: str | Path) -> "ItemStore":
        """Load a JSONL corpus file and ingest it."""
        return cls(load_corpus(path))

    def _ingest(self, corpus: Corpus) -> _Generation:
        self._loads += 1
        version = f"g{self._loads}-{corpus_fingerprint(corpus)}"
        return _Generation(corpus=corpus, version=version, lineage=version)

    @classmethod
    def restore(
        cls,
        corpus: Corpus,
        *,
        loads: int,
        lineage: str,
        epochs: Mapping[str, int] | None = None,
        expected_version: str | None = None,
    ) -> "ItemStore":
        """Rebuild a store at an exact prior generation (snapshot restore).

        Sets the generation counter so ``version`` comes out byte-identical
        to the generation that was persisted — the recovery invariant the
        chaos suite asserts.  ``expected_version`` makes the check explicit:
        a mismatch means the snapshot does not describe ``corpus`` and the
        restore must not be trusted.
        """
        if loads < 1:
            raise ValueError(f"loads must be >= 1; got {loads}")
        store = cls.__new__(cls)
        store._lock = threading.Lock()
        store._reload_lock = threading.Lock()
        store.patch_verify = False
        delta_epochs = {p: int(e) for p, e in (epochs or {}).items() if e}
        if delta_epochs:
            # Delta-descended generation: its fingerprint is a lineage
            # chain over the applied deltas (see :func:`delta_fingerprint`)
            # and cannot be recomputed from the corpus alone — trust the
            # (checksummed) snapshot manifest's version string.
            if expected_version is None:
                raise ValueError(
                    "expected_version is required to restore a "
                    "delta-descended generation"
                )
            store._loads = loads
            store._generation = _Generation(
                corpus=corpus,
                version=expected_version,
                lineage=lineage,
                epochs=delta_epochs,
            )
            return store
        store._loads = loads - 1
        generation = store._ingest(corpus)
        generation.lineage = lineage
        store._generation = generation
        if expected_version is not None and generation.version != expected_version:
            raise ValueError(
                f"restored version {generation.version!r} != expected "
                f"{expected_version!r}: snapshot does not match corpus"
            )
        return store

    # -- corpus access -------------------------------------------------------

    @property
    def corpus(self) -> Corpus:
        with self._lock:
            return self._generation.corpus

    @property
    def version(self) -> str:
        """Generation counter + content fingerprint, e.g. ``"g1-ab12cd34ef56"``."""
        with self._lock:
            return self._generation.version

    def reload(self, corpus: Corpus) -> str:
        """Swap in a new corpus; invalidates every memoised artifact.

        Returns the new version.  Lookups that raced the reload finish
        against the old generation's (still immutable) artifacts; their
        version string marks them as stale for any versioned cache.
        """
        generation = self._ingest(corpus)
        with self._lock:
            self._generation = generation
        return generation.version

    def validate_corpus(
        self,
        corpus: Corpus,
        *,
        max_comparisons: int | None = 10,
        min_reviews: int = 3,
    ) -> str:
        """Check that ``corpus`` is actually servable; return its fingerprint.

        Validation is the cheap end-to-end path a first request would
        take: non-empty corpus, computable content fingerprint, at least
        one viable comparison instance under the default shaping
        parameters, and a solvable smoke selection (greedy, ``m=1``) on
        that instance.  Raises :class:`CorpusValidationError` with the
        specific failure; never touches the store's served generation.
        """
        from repro.core.selection import make_selector

        if not corpus.products:
            raise CorpusValidationError("corpus has no products")
        if not corpus.reviews:
            raise CorpusValidationError("corpus has no reviews")
        fingerprint = corpus_fingerprint(corpus)
        instance = None
        for product in corpus.products:
            instance = build_instance(
                corpus,
                product.product_id,
                max_comparisons=max_comparisons,
                min_reviews=min_reviews,
            )
            if instance is not None:
                break
        if instance is None:
            raise CorpusValidationError(
                "corpus has no viable comparison instance "
                f"(needs >= {min_reviews} reviews and a comparable item)"
            )
        smoke = SelectionConfig(
            max_reviews=1, lam=1.0, mu=0.1, scheme=OpinionScheme.BINARY
        )
        try:
            make_selector("CompaReSetS_Greedy").select(instance, smoke)
        except Exception as exc:
            raise CorpusValidationError(
                f"smoke selection failed on target "
                f"{instance.target.product_id!r}: {type(exc).__name__}: {exc}"
            ) from exc
        return fingerprint

    def safe_reload(self, corpus: Corpus) -> str:
        """Validate ``corpus``, then atomically swap it in; return the version.

        The old generation keeps serving (lock-free for readers already
        holding its artifacts) throughout validation — a corpus that
        fails raises :class:`CorpusValidationError` and leaves the store
        exactly as it was.  Only one validated reload may run at a time;
        a second concurrent call raises :class:`ReloadInProgress` rather
        than queueing behind a potentially slow validation.
        """
        if not self._reload_lock.acquire(blocking=False):
            raise ReloadInProgress("another corpus reload is still validating")
        try:
            self.validate_corpus(corpus)
            return self.reload(corpus)
        finally:
            self._reload_lock.release()

    # -- delta ingest --------------------------------------------------------

    def apply_delta(self, reviews: Sequence[Review]) -> DeltaOutcome:
        """Append ``reviews`` to the corpus as a new generation.

        Validates the whole batch first (all-or-nothing): every review
        must reference a known product and carry a review id not already
        in the corpus.  On success the generation counter bumps and the
        affected products' epochs advance; memoised instances/artifacts
        whose candidate set is untouched carry over, so a delta to one
        product does not cold-start every other target.

        Deterministic by construction: applying the same delta sequence
        to the same starting generation always yields the same version
        string and chain epochs — WAL replay depends on this.
        """
        with self._reload_lock:
            with self._lock:
                generation = self._generation
            corpus = generation.corpus
            known, batch_ids = self._check_delta(generation, reviews)

            delta = tuple(reviews)
            new_corpus = corpus.with_appended_reviews(delta)
            affected = tuple(sorted({r.product_id for r in delta}))
            delta_by_product: dict[str, list[Review]] = {}
            for review in delta:
                delta_by_product.setdefault(review.product_id, []).append(review)
            epochs = dict(generation.epochs)
            for pid in affected:
                epochs[pid] = epochs.get(pid, 0) + 1
            self._loads += 1
            version = f"g{self._loads}-{delta_fingerprint(generation.version, delta)}"
            successor = _Generation(
                corpus=new_corpus,
                version=version,
                lineage=generation.lineage,
                epochs=epochs,
                review_ids=known | batch_ids,
            )
            began = time.perf_counter()
            patched, rebuilt, failures = self._carry_over(
                generation, successor, set(affected), delta_by_product
            )
            patch_ms = (time.perf_counter() - began) * 1e3
            with self._lock:
                self._generation = successor
            return DeltaOutcome(
                version=version,
                affected=affected,
                added=len(delta),
                patched=patched,
                rebuilt=rebuilt,
                verify_failures=failures,
                patch_ms=patch_ms,
            )

    @staticmethod
    def _check_delta(
        generation: _Generation, reviews: Sequence[Review]
    ) -> tuple[frozenset[str], set[str]]:
        """Validate a delta batch against ``generation`` without mutating.

        Returns ``(known_review_ids, batch_review_ids)`` for the caller
        to thread into the successor generation.  Raises
        :class:`DeltaValidationError` (``conflict=True`` for duplicate
        review ids) on the first offending review.
        """
        if not reviews:
            raise DeltaValidationError("delta contains no reviews")
        corpus = generation.corpus
        known = generation.review_ids
        if known is None:
            known = frozenset(r.review_id for r in corpus.reviews)
        batch_ids: set[str] = set()
        for review in reviews:
            if not isinstance(review, Review):
                raise DeltaValidationError(
                    f"delta entries must be reviews; got {type(review).__name__}"
                )
            if not corpus.has_product(review.product_id):
                raise DeltaValidationError(
                    f"review {review.review_id!r} references unknown "
                    f"product {review.product_id!r}"
                )
            if review.review_id in known or review.review_id in batch_ids:
                raise DeltaValidationError(
                    f"duplicate review id {review.review_id!r}",
                    conflict=True,
                )
            batch_ids.add(review.review_id)
        return known, batch_ids

    def validate_delta(self, reviews: Sequence[Review]) -> tuple[str, ...]:
        """Check a delta batch against the live generation; no mutation.

        Returns the sorted affected product ids the batch would touch.
        The engine calls this *before* appending the batch to the WAL so
        an invalid delta is rejected without ever being logged — the WAL
        only carries records that will apply cleanly on replay.
        """
        with self._lock:
            generation = self._generation
        self._check_delta(generation, reviews)
        return tuple(sorted({r.product_id for r in reviews}))

    def _carry_over(
        self,
        old: _Generation,
        new: _Generation,
        affected: set[str],
        delta_by_product: Mapping[str, Sequence[Review]],
    ) -> tuple[int, int, int]:
        """Carry memoised instances/artifacts across a delta.

        An instance for target T depends on T plus T's in-corpus
        also-bought *candidates* — not just the products that made it
        into the instance, because a delta can push a previously
        under-reviewed candidate over ``min_reviews`` and change the
        comparative set.  Untouched entries carry over by reference
        (solve memos and all).  Touched artifacts take the patch path:
        if the comparative set and aspect vocabulary are unchanged, the
        per-item invariants are *extended* — bordered-Gram updates,
        incremental dedup, appended tau/Gamma/column algebra — instead of
        dropped; otherwise they are dropped for a lazy cold rebuild.

        Returns ``(patched, rebuilt, verify_failures)``.
        """
        corpus = old.corpus
        safe_targets: dict[str, bool] = {}

        def target_safe(target_id: str) -> bool:
            cached = safe_targets.get(target_id)
            if cached is not None:
                return cached
            if target_id in affected:
                safe_targets[target_id] = False
                return False
            product = corpus.product(target_id)
            safe = not any(
                pid in affected
                for pid in product.also_bought
                if corpus.has_product(pid)
            )
            safe_targets[target_id] = safe
            return safe

        for key, instance in old.instances.items():
            if target_safe(key.target):
                new.instances[key] = instance

        patched = rebuilt = verify_failures = 0
        instances: dict[_InstanceKey, ComparisonInstance | None] = {}
        for art_key, artifacts in old.artifacts.items():
            key = art_key.instance_key
            if target_safe(key.target):
                new.artifacts[art_key] = dataclasses.replace(
                    artifacts, version=new.version
                )
                continue
            if key not in instances:
                # The rebuilt instance is correct for the new corpus
                # whether or not the patch goes through; cache it so a
                # later cold build does not redo the lookup work.
                instances[key] = build_instance(
                    new.corpus,
                    key.target,
                    max_comparisons=key.max_comparisons,
                    min_reviews=key.min_reviews,
                )
                new.instances[key] = instances[key]
            instance = instances[key]
            successor = self._patched_artifacts(
                new, art_key, artifacts, instance, affected, delta_by_product
            )
            if successor is None:
                rebuilt += 1
                continue
            if self.patch_verify:
                cold = self._build_artifacts(new, art_key, instance)
                mismatch = _patch_mismatch(successor, cold)
                if mismatch is not None:
                    verify_failures += 1
                    rebuilt += 1
                    logger.error(
                        "patched artifacts for target %r (scheme=%s, lam=%g) "
                        "diverged from cold build at %s; serving the cold "
                        "build instead",
                        key.target,
                        art_key.scheme.value,
                        art_key.lam,
                        mismatch,
                    )
                    new.artifacts[art_key] = cold
                    continue
            new.artifacts[art_key] = successor
            patched += 1
        return patched, rebuilt, verify_failures

    def _patched_artifacts(
        self,
        new: _Generation,
        art_key: _ArtifactKey,
        artifacts: InstanceArtifacts,
        instance: ComparisonInstance | None,
        affected: set[str],
        delta_by_product: Mapping[str, Sequence[Review]],
    ) -> InstanceArtifacts | None:
        """Extend ``artifacts`` to cover ``instance`` on the new corpus.

        Returns None when the entry is not patchable — the comparative
        set changed, the delta introduces unseen aspects (the vector
        space would change dimensions), or the review sequences do not
        line up as pure appends — in which case the caller drops it for
        a lazy cold rebuild.
        """
        old_instance = artifacts.instance
        if instance is None:
            return None
        if tuple(p.product_id for p in instance.products) != tuple(
            p.product_id for p in old_instance.products
        ):
            return None
        if len(artifacts.solver) != len(old_instance.reviews) or len(
            artifacts.columns
        ) != len(old_instance.reviews):
            return None
        space = artifacts.space
        for product in instance.products:
            for review in delta_by_product.get(product.product_id, ()):
                if not space.covers(review.aspects):
                    return None
        for index, product in enumerate(instance.products):
            old_reviews = old_instance.reviews[index]
            new_reviews = instance.reviews[index]
            delta = delta_by_product.get(product.product_id, ())
            if len(new_reviews) != len(old_reviews) + len(delta):
                return None
            if old_reviews and (
                new_reviews[0] is not old_reviews[0]
                or new_reviews[len(old_reviews) - 1] is not old_reviews[-1]
            ):
                return None
            if any(
                new_reviews[len(old_reviews) + offset] is not review
                for offset, review in enumerate(delta)
            ):
                return None
        gamma = space.aspect_vector(instance.reviews[0])
        taus = tuple(space.opinion_vector(reviews) for reviews in instance.reviews)
        columns: list[np.ndarray] = []
        solver: list[SolverArtifacts] = []
        for index, product in enumerate(instance.products):
            delta = delta_by_product.get(product.product_id, ())
            if delta:
                columns.append(
                    regression_columns(space, instance.reviews[index], art_key.lam)
                )
                solver.append(artifacts.solver[index].extended(delta))
            else:
                columns.append(artifacts.columns[index])
                solver.append(artifacts.solver[index])
        return InstanceArtifacts(
            version=new.version,
            instance=instance,
            space=space,
            gamma=gamma,
            taus=taus,
            columns=tuple(columns),
            solver=tuple(solver),
            chain=self._chain_for(new, instance),
        )

    def _build_artifacts(
        self,
        generation: _Generation,
        art_key: _ArtifactKey,
        instance: ComparisonInstance,
    ) -> InstanceArtifacts:
        """Cold-build artifacts for ``instance`` (no cache interaction)."""
        space = VectorSpace(instance.aspect_vocabulary(), art_key.scheme)
        return InstanceArtifacts(
            version=generation.version,
            instance=instance,
            space=space,
            gamma=space.aspect_vector(instance.reviews[0]),
            taus=tuple(
                space.opinion_vector(reviews) for reviews in instance.reviews
            ),
            columns=tuple(
                regression_columns(space, reviews, art_key.lam)
                for reviews in instance.reviews
            ),
            solver=tuple(
                SolverArtifacts(space, reviews, art_key.lam)
                for reviews in instance.reviews
            ),
            chain=self._chain_for(generation, instance),
        )

    def chain_state(self) -> tuple[int, str, dict[str, int]]:
        """``(loads, lineage, epochs)`` — what a snapshot must persist to
        reproduce this generation's version and chain keys exactly."""
        with self._lock:
            generation = self._generation
            return self._loads, generation.lineage, dict(generation.epochs)

    def export_artifacts(self) -> list[tuple[tuple, InstanceArtifacts]]:
        """Snapshot hook: every memoised artifact with its flattened key.

        Keys come out as ``(target, max_comparisons, min_reviews,
        scheme_value, lam)`` — plain JSON-able values the snapshot
        manifest can round-trip.
        """
        with self._lock:
            generation = self._generation
            return [
                (
                    (
                        key.instance_key.target,
                        key.instance_key.max_comparisons,
                        key.instance_key.min_reviews,
                        key.scheme.value,
                        key.lam,
                    ),
                    artifacts,
                )
                for key, artifacts in generation.artifacts.items()
            ]

    def restore_artifacts(
        self,
        target: str,
        max_comparisons: int | None,
        min_reviews: int,
        scheme: OpinionScheme,
        lam: float,
        *,
        gamma: np.ndarray,
        taus: Sequence[np.ndarray],
        columns: Sequence[np.ndarray],
        incidence: Sequence[tuple[np.ndarray, np.ndarray]],
        base_grams: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> InstanceArtifacts | None:
        """Reinstall one memoised artifact from persisted arrays.

        The instance itself is rebuilt from the (restored) corpus — that
        is cheap id/lookup work — while the expensive derived arrays
        (incidence matrices, Gram blocks, regression columns) are
        injected from the snapshot instead of recomputed.  Returns None
        when the target is no longer viable under these parameters,
        which only happens if the snapshot does not match the corpus.
        """
        with self._lock:
            generation = self._generation
        instance_key = _InstanceKey(target, max_comparisons, min_reviews)
        artifact_key = _ArtifactKey(instance_key, scheme, lam)
        instance = self._instance_for(generation, instance_key)
        if instance is None:
            return None
        space = VectorSpace(instance.aspect_vocabulary(), scheme)
        solver = tuple(
            SolverArtifacts(
                space,
                reviews,
                lam,
                incidence=incidence[index],
                base_grams=base_grams[index],
            )
            for index, reviews in enumerate(instance.reviews)
        )
        built = InstanceArtifacts(
            version=generation.version,
            instance=instance,
            space=space,
            gamma=gamma,
            taus=tuple(taus),
            columns=tuple(columns),
            solver=solver,
            chain=self._chain_for(generation, instance),
        )
        with self._lock:
            generation.artifacts.setdefault(artifact_key, built)
            return generation.artifacts[artifact_key]

    def default_target(self, max_comparisons: int | None, min_reviews: int) -> str:
        """The first viable target product id (the CLI's default choice)."""
        with self._lock:
            generation = self._generation
        for product in generation.corpus.products:
            instance = self._instance_for(
                generation,
                _InstanceKey(product.product_id, max_comparisons, min_reviews),
            )
            if instance is not None:
                return product.product_id
        raise UnviableTargetError("no viable target item in the corpus")

    # -- artifact lookup -----------------------------------------------------

    def _instance_for(
        self, generation: _Generation, key: _InstanceKey
    ) -> ComparisonInstance | None:
        with self._lock:
            if key in generation.instances:
                return generation.instances[key]
        if not generation.corpus.has_product(key.target):
            raise UnknownTargetError(
                f"target {key.target!r} is not in the corpus"
            )
        instance = build_instance(
            generation.corpus,
            key.target,
            max_comparisons=key.max_comparisons,
            min_reviews=key.min_reviews,
        )
        with self._lock:
            generation.instances.setdefault(key, instance)
            return generation.instances[key]

    def artifacts(
        self,
        target: str,
        config: SelectionConfig,
        max_comparisons: int | None = 10,
        min_reviews: int = 3,
    ) -> InstanceArtifacts:
        """The precomputed artifacts for ``target`` under ``config``.

        Raises :class:`UnknownTargetError` / :class:`UnviableTargetError`
        for targets that cannot form an instance.  Only ``config.scheme``
        and ``config.lam`` shape the artifacts; ``m`` and ``mu`` vary per
        request without invalidating anything.
        """
        with self._lock:
            generation = self._generation
        instance_key = _InstanceKey(target, max_comparisons, min_reviews)
        artifact_key = _ArtifactKey(instance_key, config.scheme, config.lam)
        with self._lock:
            cached = generation.artifacts.get(artifact_key)
        if cached is not None:
            return cached

        instance = self._instance_for(generation, instance_key)
        if instance is None:
            raise UnviableTargetError(
                f"target {target!r} is not a viable instance "
                f"(needs >= {min_reviews} reviews and a comparable item)"
            )
        built = self._build_artifacts(generation, artifact_key, instance)
        with self._lock:
            # First build wins so every caller shares one artifact object
            # (and one memoised VectorSpace).
            generation.artifacts.setdefault(artifact_key, built)
            return generation.artifacts[artifact_key]

    @staticmethod
    def _chain_for(
        generation: _Generation, instance: ComparisonInstance
    ) -> tuple:
        return (
            generation.lineage,
            tuple(
                sorted(
                    (p.product_id, generation.epochs.get(p.product_id, 0))
                    for p in instance.products
                )
            ),
        )

    def stats(self) -> dict[str, int | str]:
        """Introspection for ``/metrics``: artifact/instance cache sizes."""
        with self._lock:
            generation = self._generation
            return {
                "version": generation.version,
                "lineage": generation.lineage,
                "products": len(generation.corpus.products),
                "reviews": len(generation.corpus.reviews),
                "cached_instances": len(generation.instances),
                "cached_artifacts": len(generation.artifacts),
                "loads": self._loads,
                "delta_epochs": sum(generation.epochs.values()),
            }
