"""Process supervision: crash detection and snapshot+WAL restarts.

Durability is only as good as what happens *after* the crash.  The WAL
and snapshots (:mod:`repro.serve.wal`, :mod:`repro.serve.snapshot`)
guarantee the state survives; :class:`Supervisor` closes the loop by
running the serving engine in a **child process**, watching for its
death, and restarting it through the durable-open recovery path — so a
``kill -9`` mid-ingest becomes a bounded blip, not an outage.

The division of labour:

* the child (:func:`_child_main`) opens the durable store (snapshot load
  + WAL replay), builds a :class:`~repro.serve.engine.SelectionEngine`,
  reports its bound port and recovery provenance back over a pipe, and
  serves until killed;
* the parent keeps almost no state — the durable truth lives on disk —
  just the restart count (stamped into each child's recovery provenance,
  surfaced at ``/healthz``) and the first child's bound port, which every
  restart re-binds so clients reconnect to the same address.

Restarts are paced by :class:`RestartPolicy` (exponential backoff with a
cap, optional restart budget) so a persistently crashing child cannot
spin the host.  The chaos harness drives this module directly: it kills
the child with SIGKILL at adversarial moments and asserts the recovered
generation is byte-identical and that no acknowledged delta was lost.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path


class SupervisorError(RuntimeError):
    """The supervised child could not be started or restarted."""


@dataclass(frozen=True, slots=True)
class RestartPolicy:
    """Exponential backoff between restarts, with an optional budget.

    ``delay(attempt)`` for attempt 1, 2, 3... is ``base_delay * 2**(n-1)``
    capped at ``max_delay``.  ``max_restarts=None`` restarts forever —
    the right default for a durable server; chaos tests set a budget so a
    broken recovery path fails the run instead of looping.
    """

    base_delay: float = 0.1
    max_delay: float = 5.0
    max_restarts: int | None = None

    def delay(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))

    def exhausted(self, restarts: int) -> bool:
        return self.max_restarts is not None and restarts >= self.max_restarts


def _child_main(
    state_dir: str,
    corpus_path: str | None,
    host: str,
    port: int,
    restarts: int,
    options: dict,
    conn,
) -> None:
    """Child entry point: recover, serve, report readiness over ``conn``."""
    # The parent's signal handlers must not leak into the child; the
    # HTTP layer installs its own graceful-drain handling.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    from repro.serve.engine import build_durable_engine
    from repro.serve.http import make_server

    try:
        engine = build_durable_engine(
            state_dir,
            corpus_path=corpus_path,
            restarts=restarts,
            **options,
        )
        server = make_server(engine, host, port)
    except Exception as exc:
        try:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
        finally:
            conn.close()
        raise
    recovery = engine.recovery.as_dict() if engine.recovery else None
    conn.send(
        {
            "port": server.server_address[1],
            "version": engine.store.version,
            "recovery": recovery,
        }
    )
    conn.close()

    def _terminate(signum, frame) -> None:
        # Graceful stop for supervisor-initiated shutdown: drain, then
        # let serve_forever unwind.
        threading.Thread(
            target=lambda: (engine.drain(10.0), server.shutdown()),
            name="repro-child-drain",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    finally:
        server.server_close()


class Supervisor:
    """Runs the engine in a child process and restarts it on crash.

    The public surface is deliberately small: :meth:`start`,
    :meth:`stop`, :meth:`kill` (chaos: SIGKILL the child),
    :meth:`wait_ready` and :meth:`status`.  The parent never touches the
    WAL or snapshots — recovery correctness is entirely the durable
    open's job, which is what makes killing the child at any instant a
    safe experiment.
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        corpus_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: RestartPolicy | None = None,
        ready_timeout: float = 60.0,
        engine_options: dict | None = None,
        child_main=None,
    ) -> None:
        self.state_dir = str(state_dir)
        self.corpus_path = None if corpus_path is None else str(corpus_path)
        self.host = host
        self._requested_port = port
        self.policy = policy or RestartPolicy()
        self.ready_timeout = ready_timeout
        self.engine_options = dict(engine_options or {})
        # The child entry point is injectable so other serving shapes —
        # the cluster's framed-socket shard workers — reuse the crash
        # watcher, backoff policy, and same-port rebind unchanged.  Any
        # replacement must honour the same contract: serve on
        # (host, port), send {"port", "version", "recovery"} or
        # {"error": ...} over the pipe, and exit on SIGTERM.
        self.child_main = child_main if child_main is not None else _child_main
        self._ctx = multiprocessing.get_context()
        self._lock = threading.Lock()
        self._process: multiprocessing.Process | None = None
        self._watcher: threading.Thread | None = None
        self._stopping = threading.Event()
        self._ready = threading.Event()
        self._port: int | None = None
        self._restarts = 0
        self._last_ready: dict | None = None
        self._failure: str | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Launch the child and the crash watcher (idempotent)."""
        with self._lock:
            if self._process is not None and self._process.is_alive():
                return
            self._stopping.clear()
            self._spawn_locked()
            if self._watcher is None or not self._watcher.is_alive():
                self._watcher = threading.Thread(
                    target=self._watch, name="repro-supervisor", daemon=True
                )
                self._watcher.start()

    def _spawn_locked(self) -> None:
        """Start one child; caller holds the lock."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        port = self._port if self._port is not None else self._requested_port
        process = self._ctx.Process(
            target=self.child_main,
            args=(
                self.state_dir,
                self.corpus_path,
                self.host,
                port,
                self._restarts,
                self.engine_options,
                child_conn,
            ),
            name="repro-serve-child",
            daemon=True,
        )
        self._ready.clear()
        self._failure = None
        process.start()
        child_conn.close()
        self._process = process

        def _await_ready() -> None:
            message: dict | None = None
            if parent_conn.poll(self.ready_timeout):
                try:
                    message = parent_conn.recv()
                except (EOFError, OSError):
                    message = None
            parent_conn.close()
            if message is None:
                self._failure = "child did not report ready"
            elif "error" in message:
                self._failure = str(message["error"])
            else:
                self._port = int(message["port"])
                self._last_ready = message
            self._ready.set()

        threading.Thread(
            target=_await_ready, name="repro-supervisor-ready", daemon=True
        ).start()

    def wait_ready(self, timeout: float | None = None) -> dict:
        """Block until the current child is serving; returns its report."""
        if not self._ready.wait(
            timeout if timeout is not None else self.ready_timeout + 5.0
        ):
            raise SupervisorError("timed out waiting for the child to start")
        if self._failure is not None:
            raise SupervisorError(self._failure)
        assert self._last_ready is not None
        return dict(self._last_ready)

    def _watch(self) -> None:
        """Restart loop: join the child, back off, respawn."""
        while not self._stopping.is_set():
            with self._lock:
                process = self._process
            if process is None:
                return
            process.join()
            if self._stopping.is_set():
                return
            # The dead child's readiness report is stale the instant it
            # exits; clear it *before* publishing the restart count so a
            # wait_ready() racing the respawn blocks for the new child
            # instead of returning the old report.
            self._ready.clear()
            self._restarts += 1
            if self.policy.exhausted(self._restarts):
                self._failure = (
                    f"restart budget exhausted after {self._restarts} restarts"
                )
                self._ready.set()
                return
            time.sleep(self.policy.delay(self._restarts))
            if self._stopping.is_set():
                return
            with self._lock:
                self._spawn_locked()

    def stop(self, timeout: float = 15.0) -> None:
        """Terminate the child gracefully; escalate to SIGKILL on a hang."""
        self._stopping.set()
        with self._lock:
            process = self._process
            self._process = None
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - hung drain
                process.kill()
                process.join(5.0)
        watcher = self._watcher
        if watcher is not None and watcher is not threading.current_thread():
            watcher.join(timeout)
        self._watcher = None

    def kill(self) -> int:
        """SIGKILL the child (chaos path); returns the killed pid."""
        with self._lock:
            process = self._process
        if process is None or process.pid is None or not process.is_alive():
            raise SupervisorError("no live child to kill")
        os.kill(process.pid, signal.SIGKILL)
        return process.pid

    # -- introspection -------------------------------------------------------

    @property
    def port(self) -> int | None:
        return self._port

    @property
    def restarts(self) -> int:
        return self._restarts

    def is_alive(self) -> bool:
        with self._lock:
            process = self._process
        return process is not None and process.is_alive()

    def status(self) -> dict:
        with self._lock:
            process = self._process
        return {
            "running": process is not None and process.is_alive(),
            "pid": process.pid if process is not None else None,
            "port": self._port,
            "restarts": self._restarts,
            "last_ready": dict(self._last_ready) if self._last_ready else None,
            "failure": self._failure,
        }

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
