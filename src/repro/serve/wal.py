"""Write-ahead log for durable delta ingest.

The contract behind ``POST /v1/ingest`` is *WAL-before-ack*: a delta is
appended to the log and fsynced **before** the engine applies it to the
in-memory :class:`~repro.serve.store.ItemStore` or acknowledges the
client.  The crash windows then sort themselves out:

* crash **before** the fsync completes — the client never got an ack;
  the tail record may be torn and is truncated on replay.  Nothing
  acknowledged is lost.
* crash **after** the fsync, before the in-memory apply or the ack — the
  record is durable; replay re-applies it.  The client retries and gets
  a duplicate-review rejection, which is the correct signal that the
  first attempt actually landed.

Record format — length-prefixed, checksummed JSONL::

    <payload-byte-length>|<crc32-hex>|<payload-json>\\n

The length prefix makes a short (torn) final record detectable without
parsing; the CRC32 catches bit rot and the torn-write case where the
kernel wrote a full-length run of garbage.  A bad record at the *tail*
is the signature of a crash mid-append: replay truncates the file back
to the last good byte and continues.  A bad record *followed by more
data* means something other than a crash mangled the log, and that is
never silently healed — :class:`WALCorruptError`.

Every append funnels through one physical-write path with an injectable
``before_write`` hook, so the chaos suite can script disk-full (ENOSPC)
at exact append boundaries.
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.data.models import AspectMention, Review
from repro.resilience.atomicio import checksum, fsync_directory

_SEPARATOR = b"|"


def review_record(review: Review) -> dict:
    """A JSON-ready dict that round-trips one Review (WAL delta payloads)."""
    return {
        "review_id": review.review_id,
        "product_id": review.product_id,
        "reviewer_id": review.reviewer_id,
        "rating": review.rating,
        "text": review.text,
        "mentions": [
            {"aspect": m.aspect, "sentiment": m.sentiment, "strength": m.strength}
            for m in review.mentions
        ],
    }


def review_from_record(record: dict) -> Review:
    """Rebuild a Review written by :func:`review_record`.

    Raises ``ValueError`` (not KeyError/TypeError) on malformed input so
    the HTTP layer can map bad ingest bodies to 400.
    """
    if not isinstance(record, dict):
        raise ValueError(f"review record must be an object; got {type(record).__name__}")
    try:
        return Review(
            review_id=str(record["review_id"]),
            product_id=str(record["product_id"]),
            reviewer_id=str(record.get("reviewer_id", "")),
            rating=float(record.get("rating", 0.0)),
            text=str(record.get("text", "")),
            mentions=tuple(
                AspectMention(
                    aspect=str(m["aspect"]),
                    sentiment=int(m.get("sentiment", 0)),
                    strength=float(m.get("strength", 1.0)),
                )
                for m in record.get("mentions", ())
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed review record: {exc}") from exc


class WALError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WALCorruptError(WALError):
    """A damaged record was found *before* the tail (not crash-shaped)."""


@dataclass(frozen=True, slots=True)
class WALStats:
    """Introspection for ``/metrics`` and the recovery report."""

    last_seq: int
    records: int
    bytes: int
    appended: int
    torn_tail_bytes: int


def _encode_record(payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return b"%d|%08x|%s\n" % (len(body), checksum(body), body)


class WriteAheadLog:
    """Append-only, fsynced, checksummed JSONL log with torn-tail healing.

    ``before_write(num_bytes)`` is called immediately before every
    physical append — tests and the chaos harness raise ``OSError``
    from it to simulate a full disk at a precise record boundary.  A
    failed append restores the file to its pre-append length, so the
    log never retains a half-written record from a *surviving* process
    (a killed process leaves the torn tail for replay to truncate).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        before_write: Callable[[int], None] | None = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.before_write = before_write
        self._lock = threading.Lock()
        self._handle = None
        self._appended = 0
        self._records: list[tuple[int, dict]] = []
        self._torn_tail_bytes = 0
        self._valid_bytes = 0
        self._seq_floor = 0  # highest seq dropped by compaction
        self._recover()

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Scan the log, truncating a torn tail; raise on mid-file damage."""
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        offset = 0
        while offset < len(raw):
            parsed = self._parse_one(raw, offset)
            if parsed is None:  # damaged record starting at `offset`
                if raw[offset:].count(b"\n") > 1 or self._has_data_after(
                    raw, offset
                ):
                    raise WALCorruptError(
                        f"{self.path}: corrupt record at byte {offset} "
                        "followed by more data (not a torn tail)"
                    )
                self._torn_tail_bytes = len(raw) - offset
                break
            seq, payload, next_offset = parsed
            self._records.append((seq, payload))
            offset = next_offset
        self._valid_bytes = offset
        if self._torn_tail_bytes:
            with self.path.open("rb+") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())

    @staticmethod
    def _has_data_after(raw: bytes, offset: int) -> bool:
        """Whether non-empty content exists after the first newline past
        ``offset`` — the discriminator between a torn tail and mid-file
        corruption."""
        newline = raw.find(b"\n", offset)
        if newline < 0:
            return False
        return bool(raw[newline + 1 :].strip())

    @staticmethod
    def _parse_one(raw: bytes, offset: int) -> tuple[int, dict, int] | None:
        """Parse one record at ``offset``; None when damaged/incomplete."""
        sep1 = raw.find(_SEPARATOR, offset)
        if sep1 < 0 or sep1 - offset > 20:
            return None
        try:
            length = int(raw[offset:sep1])
        except ValueError:
            return None
        sep2 = raw.find(_SEPARATOR, sep1 + 1)
        if sep2 != sep1 + 9:  # crc is always 8 hex chars
            return None
        try:
            crc = int(raw[sep1 + 1 : sep2], 16)
        except ValueError:
            return None
        body_start = sep2 + 1
        body_end = body_start + length
        if body_end + 1 > len(raw) or raw[body_end : body_end + 1] != b"\n":
            return None
        body = raw[body_start:body_end]
        if checksum(body) != crc:
            return None
        try:
            payload = json.loads(body)
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, dict) or "seq" not in payload:
            return None
        return int(payload["seq"]), payload, body_end + 1

    # -- append path ---------------------------------------------------------

    def _open_for_append(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("ab")
        return self._handle

    def append(self, payload: dict) -> int:
        """Durably append one record; returns its sequence number.

        The record is on disk (fsynced) when this returns — that is the
        acknowledgment barrier.  On failure (e.g. ``ENOSPC``) the file
        is restored to its previous length and the error propagates, so
        the caller must *not* apply or acknowledge the delta.
        """
        with self._lock:
            seq = self.last_seq + 1
            record = dict(payload)
            record["seq"] = seq
            data = _encode_record(record)
            handle = self._open_for_append()
            if self.before_write is not None:
                self.before_write(len(data))
            try:
                handle.write(data)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            except OSError:
                # Roll the file back so a *surviving* process never
                # carries a half-written record into later appends.
                try:
                    handle.truncate(self._valid_bytes)
                    handle.flush()
                except OSError:  # pragma: no cover - double fault
                    pass
                raise
            self._valid_bytes += len(data)
            self._records.append((seq, record))
            self._appended += 1
            return seq

    # -- read path -----------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self._records[-1][0] if self._records else self._seq_floor

    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, dict]]:
        """Yield ``(seq, payload)`` for every record with ``seq > after_seq``."""
        for seq, payload in list(self._records):
            if seq > after_seq:
                yield seq, payload

    def __len__(self) -> int:
        return len(self._records)

    def stats(self) -> WALStats:
        with self._lock:
            return WALStats(
                last_seq=self.last_seq,
                records=len(self._records),
                bytes=self._valid_bytes,
                appended=self._appended,
                torn_tail_bytes=self._torn_tail_bytes,
            )

    # -- compaction ----------------------------------------------------------

    def compact(self, upto_seq: int) -> int:
        """Drop records with ``seq <= upto_seq`` (now covered by a snapshot).

        Rewrites the log atomically (temp file + replace + dir fsync);
        sequence numbers keep counting from where they were.  Returns
        the number of records dropped.
        """
        with self._lock:
            keep = [(s, p) for s, p in self._records if s > upto_seq]
            dropped = len(self._records) - len(keep)
            if dropped == 0:
                return 0
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            data = b"".join(_encode_record(p) for _, p in keep)
            tmp = self.path.with_suffix(self.path.suffix + ".compact")
            with tmp.open("wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            fsync_directory(self.path.parent)
            # Sequence numbering continues past the snapshot watermark
            # even when the log empties out entirely.
            self._seq_floor = max(
                self._seq_floor, max(s for s, _ in self._records if s <= upto_seq)
            )
            self._records = keep
            self._valid_bytes = len(data)
            return dropped

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
