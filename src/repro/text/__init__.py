"""NLP substrate: tokenisation, stemming, lexicons, aspect/sentiment mining, ROUGE.

The paper treats aspect-opinion annotations "as given", produced upstream by a
frequency-based pipeline (Gao et al. 2019 via Le & Lauw 2021).  This package
implements that upstream pipeline from scratch so the reproduction is
self-contained:

* :mod:`repro.text.tokenize` — word/sentence tokenisation and n-grams.
* :mod:`repro.text.stemmer` — a from-scratch Porter stemmer.
* :mod:`repro.text.stopwords` — English stopword list.
* :mod:`repro.text.lexicon` — positive/negative opinion lexicon with negation.
* :mod:`repro.text.aspects` — frequent-term aspect mining with rating
  correlation filtering (top-2000 -> top-500 recipe from the paper).
* :mod:`repro.text.sentiment` — window-based (aspect, opinion) extraction.
* :mod:`repro.text.rouge` — ROUGE-1/2/L F1 scores (Lin 2003).
* :mod:`repro.text.rouge_kernel` — vectorised ROUGE over interned token
  ids (batch pair grids; bitwise equal to :mod:`repro.text.rouge`).
"""

from repro.text.rouge import RougeScore, rouge_1, rouge_2, rouge_l, rouge_n, rouge_scores
from repro.text.rouge_kernel import (
    CorpusInterner,
    RougeGrid,
    pairwise_alignment_matrix,
    rouge_scores_many,
)
from repro.text.stemmer import PorterStemmer, stem
from repro.text.tokenize import ngrams, sentences, tokenize

__all__ = [
    "CorpusInterner",
    "PorterStemmer",
    "RougeGrid",
    "RougeScore",
    "ngrams",
    "pairwise_alignment_matrix",
    "rouge_1",
    "rouge_2",
    "rouge_l",
    "rouge_n",
    "rouge_scores",
    "rouge_scores_many",
    "sentences",
    "stem",
    "tokenize",
]
