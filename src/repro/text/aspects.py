"""Frequency-based aspect extraction with rating-correlation filtering.

Implements the recipe the paper's sentiment data came from (§4.1.1, after
Gao et al. 2019 / Le & Lauw 2021): take the most frequently mentioned
candidate terms in the review corpus (the paper uses top-2000 concepts),
rank them by the correlation of their occurrence with star ratings, and
keep the top-k (the paper keeps 500).  Candidates are stemmed, stopword-
and opinion-word-filtered content tokens.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.data.models import Review
from repro.text.lexicon import is_opinion_word
from repro.text.stemmer import stem
from repro.text.stopwords import is_stopword
from repro.text.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class AspectTerm:
    """One mined aspect: canonical stem, most frequent surface form, stats."""

    stem: str
    surface: str
    document_frequency: int
    rating_correlation: float


@dataclass(frozen=True, slots=True)
class AspectVocabulary:
    """The mined aspect list, ordered by |rating correlation| descending."""

    terms: tuple[AspectTerm, ...]

    def __len__(self) -> int:
        return len(self.terms)

    def __contains__(self, token: str) -> bool:
        return stem(token) in self.stems

    @property
    def stems(self) -> frozenset[str]:
        return frozenset(term.stem for term in self.terms)

    def surface_of(self, aspect_stem: str) -> str:
        """Most frequent surface form of ``aspect_stem`` (KeyError if absent)."""
        for term in self.terms:
            if term.stem == aspect_stem:
                return term.surface
        raise KeyError(aspect_stem)


def candidate_tokens(text: str) -> list[str]:
    """Stemmed content tokens of ``text``: no stopwords, no opinion words.

    Opinion words are excluded so "great" never becomes an aspect; they are
    consumed by the sentiment extractor instead.
    """
    return [
        stem(token)
        for token in tokenize(text)
        if not is_stopword(token) and not is_opinion_word(token) and not token.isdigit()
    ]


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation, 0.0 when either side is constant."""
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def mine_aspects(
    reviews: Iterable[Review],
    candidate_pool: int = 2000,
    keep: int = 500,
    min_document_frequency: int = 2,
    concept_filter: frozenset[str] | set[str] | None = None,
) -> AspectVocabulary:
    """Mine an aspect vocabulary from ``reviews``.

    Parameters mirror the paper's recipe: ``candidate_pool`` most frequent
    terms are ranked by absolute rating correlation and the top ``keep``
    survive.  ``min_document_frequency`` removes hapax noise before pooling.

    ``concept_filter``, when given, restricts candidates to the supplied
    stems — the analogue of the paper restricting candidates to Microsoft
    Concepts, which keeps sentiment-correlated function words (adverbs,
    template verbs) out of the aspect list.
    """
    reviews = list(reviews)
    if not reviews:
        return AspectVocabulary(terms=())

    document_frequency: Counter[str] = Counter()
    surface_counts: dict[str, Counter[str]] = {}
    presence_rows: list[set[str]] = []
    ratings = np.array([review.rating for review in reviews], dtype=float)

    for review in reviews:
        raw_tokens = [
            token
            for token in tokenize(review.text)
            if not is_stopword(token) and not is_opinion_word(token) and not token.isdigit()
        ]
        stems_here: set[str] = set()
        for token in raw_tokens:
            stemmed = stem(token)
            stems_here.add(stemmed)
            surface_counts.setdefault(stemmed, Counter())[token] += 1
        presence_rows.append(stems_here)
        document_frequency.update(stems_here)

    pooled = [
        term
        for term, frequency in document_frequency.most_common()
        if frequency >= min_document_frequency
        and (concept_filter is None or term in concept_filter)
    ][:candidate_pool]

    scored: list[AspectTerm] = []
    for term in pooled:
        presence = np.array(
            [1.0 if term in row else 0.0 for row in presence_rows], dtype=float
        )
        correlation = _pearson(presence, ratings)
        surface = surface_counts[term].most_common(1)[0][0]
        scored.append(
            AspectTerm(
                stem=term,
                surface=surface,
                document_frequency=document_frequency[term],
                rating_correlation=correlation,
            )
        )

    scored.sort(key=lambda t: (-abs(t.rating_correlation), -t.document_frequency, t.stem))
    return AspectVocabulary(terms=tuple(scored[:keep]))


def aspect_index(vocabulary: AspectVocabulary | Sequence[str]) -> dict[str, int]:
    """Stable stem -> position mapping for vectorisation."""
    if isinstance(vocabulary, AspectVocabulary):
        stems = [term.stem for term in vocabulary.terms]
    else:
        stems = list(vocabulary)
    return {stemmed: position for position, stemmed in enumerate(stems)}
