"""Opinion lexicon: positive/negative words, intensifiers, and negation.

A compact Hu & Liu (2004)-style lexicon sized for product-review English.
The sentiment extractor (:mod:`repro.text.sentiment`) scores each opinion
word +1/-1, flips the sign under a preceding negation within a short
window, and scales by intensifiers.
"""

from __future__ import annotations

POSITIVE_WORDS: frozenset[str] = frozenset(
    """
    amazing awesome beautiful best better bright brilliant charming cheap
    classy clean clear comfortable comfy compact convenient cool crisp cute
    decent delightful dependable durable easy effective efficient elegant
    enjoyable excellent exceptional fantastic fast favorite fine flawless
    flexible fun functional generous gentle good gorgeous great handy happy
    healthy helpful ideal impressive incredible inexpensive innovative
    intuitive lightweight love loved lovely loyal marvelous neat nice
    outstanding perfect pleasant pleased portable powerful precise premium
    pretty quick quiet recommend recommended reliable responsive rich robust
    satisfied secure sharp shiny silky simple sleek smart smooth soft solid
    speedy splendid stable strong stunning sturdy stylish superb superior
    supportive sweet terrific thrilled tough trustworthy useful valuable
    versatile vibrant vivid warm wonderful worth worthy
    """.split()
)

NEGATIVE_WORDS: frozenset[str] = frozenset(
    """
    annoying awful bad broke broken bulky cheaply clumsy coarse costly
    cracked crappy cumbersome damaged dead defective dim disappointed
    disappointing dull expensive faded fail failed fails faulty feeble
    flawed flimsy fragile frustrating garbage glitchy grainy gross hard
    harsh hate hated heavy horrible impossible inaccurate inconsistent
    inconvenient inferior junk lag laggy lame leaked leaking loose loud lousy
    mediocre messy misleading noisy overpriced painful pathetic poor poorly
    problem problems regret return returned rough sad scratched shoddy slow
    sloppy stiff stopped struggle stuck terrible tight tiny trouble ugly
    unacceptable uncomfortable unhappy unreliable unresponsive unstable
    unusable useless waste weak worse worst wrong
    """.split()
)

NEGATION_WORDS: frozenset[str] = frozenset(
    """
    not no never neither nor none nothing hardly barely scarcely without
    n't cannot can't won't don't doesn't didn't isn't aren't wasn't weren't
    """.split()
)

INTENSIFIERS: dict[str, float] = {
    "very": 1.5,
    "really": 1.5,
    "extremely": 2.0,
    "incredibly": 2.0,
    "absolutely": 2.0,
    "super": 1.5,
    "so": 1.3,
    "quite": 1.2,
    "pretty": 1.2,
    "somewhat": 0.7,
    "slightly": 0.5,
    "a-little": 0.5,
}


def polarity(token: str) -> int:
    """Return +1 for a positive opinion word, -1 for negative, 0 otherwise."""
    token = token.lower()
    if token in POSITIVE_WORDS:
        return 1
    if token in NEGATIVE_WORDS:
        return -1
    return 0


def is_opinion_word(token: str) -> bool:
    """Return True if ``token`` carries sentiment polarity."""
    return polarity(token) != 0


def is_negation(token: str) -> bool:
    """Return True if ``token`` negates a following opinion."""
    return token.lower() in NEGATION_WORDS


def intensity(token: str) -> float:
    """Return the multiplicative strength of an intensifier (1.0 if none)."""
    return INTENSIFIERS.get(token.lower(), 1.0)
