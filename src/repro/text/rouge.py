"""ROUGE metrics implemented from scratch (Lin & Hovy 2003).

The paper evaluates review alignment with F1 of ROUGE-1 (unigrams),
ROUGE-2 (bigrams), and ROUGE-L (longest common subsequence), averaged over
pairs of selected reviews coming from different items.  Scores are in
[0, 1]; the paper's tables report them multiplied by 100.

ROUGE-N here uses clipped n-gram counts (each reference n-gram can be
matched at most as many times as it occurs), matching the standard
single-reference ROUGE definition.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Sequence

from repro.text.tokenize import ngrams, tokenize


@dataclass(frozen=True, slots=True)
class RougeScore:
    """Precision/recall/F1 triple for one ROUGE variant."""

    precision: float
    recall: float
    f1: float

    @staticmethod
    def from_counts(matches: float, candidate_total: float, reference_total: float) -> "RougeScore":
        """Build a score from match and total counts, guarding zero division."""
        precision = matches / candidate_total if candidate_total > 0 else 0.0
        recall = matches / reference_total if reference_total > 0 else 0.0
        if precision + recall == 0:
            return RougeScore(0.0, 0.0, 0.0)
        f1 = 2 * precision * recall / (precision + recall)
        return RougeScore(precision, recall, f1)


def _as_tokens(text_or_tokens: str | Sequence[str]) -> list[str]:
    if isinstance(text_or_tokens, str):
        return tokenize(text_or_tokens)
    return list(text_or_tokens)


def rouge_n(candidate: str | Sequence[str], reference: str | Sequence[str], n: int) -> RougeScore:
    """ROUGE-N between a candidate and a reference text (or token lists)."""
    candidate_tokens = _as_tokens(candidate)
    reference_tokens = _as_tokens(reference)
    candidate_counts = Counter(ngrams(candidate_tokens, n))
    reference_counts = Counter(ngrams(reference_tokens, n))
    matches = sum(
        min(count, reference_counts[gram]) for gram, count in candidate_counts.items()
    )
    return RougeScore.from_counts(
        matches,
        candidate_total=sum(candidate_counts.values()),
        reference_total=sum(reference_counts.values()),
    )


def rouge_1(candidate: str | Sequence[str], reference: str | Sequence[str]) -> RougeScore:
    """ROUGE-1 (unigram overlap)."""
    return rouge_n(candidate, reference, 1)


def rouge_2(candidate: str | Sequence[str], reference: str | Sequence[str]) -> RougeScore:
    """ROUGE-2 (bigram overlap)."""
    return rouge_n(candidate, reference, 2)


def _lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence (O(len(a)*len(b)) DP)."""
    if not a or not b:
        return 0
    # Keep the shorter sequence as the inner row to bound memory.
    if len(b) > len(a):
        a, b = b, a
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0]
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1]


def rouge_l(candidate: str | Sequence[str], reference: str | Sequence[str]) -> RougeScore:
    """ROUGE-L (longest common subsequence F1)."""
    candidate_tokens = _as_tokens(candidate)
    reference_tokens = _as_tokens(reference)
    lcs = _lcs_length(candidate_tokens, reference_tokens)
    return RougeScore.from_counts(
        lcs,
        candidate_total=len(candidate_tokens),
        reference_total=len(reference_tokens),
    )


def rouge_l_summary(
    candidate_sentences: Sequence[str | Sequence[str]],
    reference_sentences: Sequence[str | Sequence[str]],
) -> RougeScore:
    """Summary-level ROUGE-L (Lin 2004, §3.2).

    For each reference sentence, take the *union* of its LCS matches
    against every candidate sentence (each reference token can match at
    most once), then score the union size against the total candidate and
    reference lengths.  Used when comparing multi-review selections as
    whole summaries rather than pairwise.
    """
    candidate_tokens = [_as_tokens(s) for s in candidate_sentences]
    reference_tokens = [_as_tokens(s) for s in reference_sentences]
    total_union = 0
    for reference in reference_tokens:
        matched = [False] * len(reference)
        for candidate in candidate_tokens:
            for position in _lcs_positions(reference, candidate):
                matched[position] = True
        total_union += sum(matched)
    candidate_total = sum(len(tokens) for tokens in candidate_tokens)
    reference_total = sum(len(tokens) for tokens in reference_tokens)
    return RougeScore.from_counts(total_union, candidate_total, reference_total)


def _lcs_positions(reference: Sequence[str], candidate: Sequence[str]) -> list[int]:
    """Indices of ``reference`` tokens participating in one LCS backtrace."""
    n, m = len(reference), len(candidate)
    if n == 0 or m == 0:
        return []
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        row = table[i]
        previous = table[i - 1]
        token = reference[i - 1]
        for j in range(1, m + 1):
            if token == candidate[j - 1]:
                row[j] = previous[j - 1] + 1
            else:
                row[j] = max(previous[j], row[j - 1])
    positions: list[int] = []
    i, j = n, m
    while i > 0 and j > 0:
        if reference[i - 1] == candidate[j - 1]:
            positions.append(i - 1)
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    return positions


def rouge_scores(candidate: str | Sequence[str], reference: str | Sequence[str]) -> dict[str, RougeScore]:
    """All three variants at once, keyed 'rouge-1', 'rouge-2', 'rouge-l'.

    Tokenises once and reuses the token lists across variants.
    """
    candidate_tokens = _as_tokens(candidate)
    reference_tokens = _as_tokens(reference)
    return {
        "rouge-1": rouge_n(candidate_tokens, reference_tokens, 1),
        "rouge-2": rouge_n(candidate_tokens, reference_tokens, 2),
        "rouge-l": rouge_l(candidate_tokens, reference_tokens),
    }
