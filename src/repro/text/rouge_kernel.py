"""Vectorized ROUGE kernels over interned token ids.

:mod:`repro.text.rouge` scores one review pair at a time with ``Counter``
n-gram overlap and a pure-Python LCS DP.  The alignment experiments
(Tables 3/4/6, Figs. 5/6) score *every cross-item pair* of selected
reviews per instance, so that pairwise cost dominates evaluation wall
clock.  This module makes the pair grid a handful of numpy operations:

* :class:`CorpusInterner` — review text -> int32 token-id arrays, interned
  once per corpus (plus a memo of the reference-path token lists, so the
  pure-Python path also tokenises each distinct text exactly once);
* ROUGE-1/2 — clipped n-gram matches via local-vocabulary count matrices
  (``np.searchsorted`` + ``np.bincount``) and a broadcast minimum-sum;
  bigrams are packed into int64 (``id_a << 32 | id_b``) before counting;
* ROUGE-L — a rolling-row LCS DP where each row update is one vectorised
  ``np.maximum`` + prefix-max over *all* references at once;
* batch APIs — :func:`pairwise_alignment_matrix` scores a full |A| x |B|
  review-pair grid in one call, :func:`rouge_scores_many` scores aligned
  candidate/reference pairs.

Exactness guarantee (same pattern as :mod:`repro.core.omp_kernel`): the
kernel computes the *same integers* (clipped matches, n-gram totals, LCS
lengths) as the reference and then applies the same IEEE-754 double
operations in the same order (``p = m/ct``, ``r = m/rt``,
``f1 = 2*p*r/(p+r)``), so every score is bitwise equal to
:func:`repro.text.rouge.rouge_n` / :func:`~repro.text.rouge.rouge_l`.
The reference implementation stays untouched as the ground truth;
``tests/test_rouge_kernel.py`` asserts the equality across schemes,
edge cases, and hypothesis-generated inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.text.rouge import RougeScore
from repro.text.tokenize import tokenize

_EMPTY_I32 = np.empty(0, dtype=np.int32)
_EMPTY_I64 = np.empty(0, dtype=np.int64)


@dataclass(frozen=True, slots=True)
class InternedText:
    """One text as interned unigram ids and packed bigram ids.

    ``ids`` keeps document order (needed for the LCS DP); ``bigrams``
    packs consecutive id pairs into int64 (high word = left token), so
    bigram counting reuses the unigram machinery.  Arrays are shared and
    must not be mutated.
    """

    ids: np.ndarray
    bigrams: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)


class CorpusInterner:
    """Corpus-level token interner: text -> :class:`InternedText`, cached.

    One interner should live per corpus/generation (the alignment scorer
    owns one); interning is idempotent and the vocabulary only grows, so
    id arrays remain valid across calls.  ``tokens`` memoises the plain
    token lists for the reference scoring path, guaranteeing ``tokenize``
    runs once per distinct text however many pairs the text appears in.
    """

    def __init__(self) -> None:
        self._vocab: dict[str, int] = {}
        self._interned: dict[str, InternedText] = {}
        self._tokens: dict[str, list[str]] = {}

    def __len__(self) -> int:
        return len(self._interned)

    @property
    def vocab_size(self) -> int:
        """Number of distinct tokens interned so far."""
        return len(self._vocab)

    def tokens(self, text: str) -> list[str]:
        """Memoised ``tokenize(text)``; callers must not mutate the list."""
        cached = self._tokens.get(text)
        if cached is None:
            cached = tokenize(text)
            self._tokens[text] = cached
        return cached

    def intern(self, text: str) -> InternedText:
        """Intern one text (cached by exact text content)."""
        cached = self._interned.get(text)
        if cached is None:
            cached = self.intern_tokens(self.tokens(text))
            self._interned[text] = cached
        return cached

    def intern_tokens(self, tokens: Sequence[str]) -> InternedText:
        """Intern an explicit token sequence (uncached)."""
        vocab = self._vocab
        ids = np.fromiter(
            (vocab.setdefault(token, len(vocab)) for token in tokens),
            dtype=np.int32,
            count=len(tokens),
        )
        if len(ids) >= 2:
            bigrams = (ids[:-1].astype(np.int64) << 32) | ids[1:].astype(np.int64)
        else:
            bigrams = _EMPTY_I64
        return InternedText(ids=ids, bigrams=bigrams)


@dataclass(frozen=True, slots=True)
class RougeGrid:
    """F1 grids for one |A| x |B| review-pair cross product.

    Entry ``[a, b]`` is bitwise equal to the reference
    ``rouge_*(A[a], B[b]).f1``.
    """

    rouge_1: np.ndarray
    rouge_2: np.ndarray
    rouge_l: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.rouge_1.shape


def _f1_grid(matches: np.ndarray, candidate_totals: np.ndarray, reference_totals: np.ndarray) -> np.ndarray:
    """Vectorised :meth:`RougeScore.from_counts` F1 over a match grid.

    Applies exactly the reference's float operations elementwise:
    ``p = m/ct`` (0 when ct == 0), ``r = m/rt`` (0 when rt == 0), and
    ``f1 = 2*p*r/(p+r)`` (0 when p + r == 0).
    """
    m = matches.astype(np.float64)
    ct = candidate_totals.astype(np.float64)[:, None]
    rt = reference_totals.astype(np.float64)[None, :]
    p = np.divide(m, ct, out=np.zeros_like(m), where=ct > 0)
    r = np.divide(m, rt, out=np.zeros_like(m), where=rt > 0)
    denominator = p + r
    numerator = 2.0 * p * r
    return np.divide(
        numerator, denominator, out=np.zeros_like(m), where=denominator > 0
    )


def _count_matrix(gram_lists: Sequence[np.ndarray], local_vocab: np.ndarray) -> np.ndarray:
    """Per-row gram counts over a sorted local vocabulary (one bincount)."""
    num_rows, vocab_size = len(gram_lists), len(local_vocab)
    lengths = np.array([len(g) for g in gram_lists], dtype=np.int64)
    if not lengths.sum():
        return np.zeros((num_rows, vocab_size), dtype=np.int64)
    stacked = np.concatenate([g for g in gram_lists if len(g)])
    mapped = np.searchsorted(local_vocab, stacked)
    rows = np.repeat(np.arange(num_rows, dtype=np.int64), lengths)
    flat = np.bincount(rows * vocab_size + mapped, minlength=num_rows * vocab_size)
    return flat.reshape(num_rows, vocab_size)


def _clipped_match_grid(
    grams_a: Sequence[np.ndarray], grams_b: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Clipped n-gram matches + totals for every (a, b) pair.

    ``matches[a, b] = sum_g min(count_a[g], count_b[g])`` — the integer
    the reference computes from two ``Counter`` objects.  The minimum-sum
    is decomposed over count thresholds,
    ``min(x, y) = sum_t [x >= t][y >= t]``, so each level is one 0/1
    matrix product (exact in float64: every partial sum is a small
    integer).
    """
    totals_a = np.array([len(g) for g in grams_a], dtype=np.int64)
    totals_b = np.array([len(g) for g in grams_b], dtype=np.int64)
    matches = np.zeros((len(grams_a), len(grams_b)), dtype=np.int64)
    stacked = [g for g in grams_a if len(g)] + [g for g in grams_b if len(g)]
    if not stacked:
        return matches, totals_a, totals_b
    local_vocab = np.unique(np.concatenate(stacked))
    counts_a = _count_matrix(grams_a, local_vocab)
    counts_b = _count_matrix(grams_b, local_vocab)
    depth = int(min(counts_a.max(initial=0), counts_b.max(initial=0)))
    if depth == 1:
        # The common case: no gram repeats on at least one side of any
        # pair-relevant level, so one boolean matmul covers everything.
        matches += (
            counts_a.astype(bool).astype(np.float64)
            @ counts_b.astype(bool).astype(np.float64).T
        ).astype(np.int64)
    else:
        accumulated = np.zeros(matches.shape, dtype=np.float64)
        for threshold in range(1, depth + 1):
            accumulated += (
                (counts_a >= threshold).astype(np.float64)
                @ (counts_b >= threshold).astype(np.float64).T
            )
        matches += accumulated.astype(np.int64)
    return matches, totals_a, totals_b


def _lcs_row_grid(a_ids: np.ndarray, b_padded: np.ndarray, b_lengths: np.ndarray) -> np.ndarray:
    """LCS lengths of one candidate against every reference at once.

    Rolling-row DP over the candidate's tokens; each row update is the
    prefix-max formulation of the LCS recurrence
    ``cur[j] = max(prev[j], prev[j-1] + eq, cur[j-1])``, which vectorises
    as an elementwise maximum followed by ``np.maximum.accumulate``.
    ``b_padded`` rows are padded with -1 (never a valid id).
    """
    num_refs, max_len = b_padded.shape
    previous = np.zeros((num_refs, max_len + 1), dtype=np.int32)
    current = np.zeros_like(previous)
    for token in a_ids:
        candidate = np.maximum(
            previous[:, 1:],
            np.where(b_padded == token, previous[:, :-1] + 1, 0),
        )
        np.maximum.accumulate(candidate, axis=1, out=current[:, 1:])
        previous, current = current, previous
    return previous[np.arange(num_refs), b_lengths]


def _pad_ids(id_lists: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length id arrays into a -1-padded matrix."""
    lengths = np.array([len(ids) for ids in id_lists], dtype=np.int64)
    padded = np.full((len(id_lists), int(lengths.max(initial=0))), -1, dtype=np.int32)
    for row, ids in enumerate(id_lists):
        padded[row, : len(ids)] = ids
    return padded, lengths


def rouge_pair_grid(
    group_a: Sequence[InternedText], group_b: Sequence[InternedText]
) -> RougeGrid:
    """Score the full |A| x |B| cross product of two interned groups."""
    na, nb = len(group_a), len(group_b)
    if na == 0 or nb == 0:
        empty = np.zeros((na, nb), dtype=np.float64)
        return RougeGrid(rouge_1=empty, rouge_2=empty.copy(), rouge_l=empty.copy())

    ids_a = [t.ids for t in group_a]
    ids_b = [t.ids for t in group_b]

    m1, t1a, t1b = _clipped_match_grid(ids_a, ids_b)
    f1_1 = _f1_grid(m1, t1a, t1b)

    m2, t2a, t2b = _clipped_match_grid(
        [t.bigrams for t in group_a], [t.bigrams for t in group_b]
    )
    f1_2 = _f1_grid(m2, t2a, t2b)

    b_padded, b_lengths = _pad_ids(ids_b)
    lcs = np.zeros((na, nb), dtype=np.int64)
    for row, a_ids in enumerate(ids_a):
        if len(a_ids):
            lcs[row] = _lcs_row_grid(a_ids, b_padded, b_lengths)
    f1_l = _f1_grid(lcs, t1a, t1b)

    return RougeGrid(rouge_1=f1_1, rouge_2=f1_2, rouge_l=f1_l)


def pairwise_alignment_matrix(
    group_a: Sequence[str | Sequence[str]],
    group_b: Sequence[str | Sequence[str]],
    interner: CorpusInterner | None = None,
) -> RougeGrid:
    """ROUGE-1/2/L F1 grids over the cross product of two review groups.

    Accepts raw texts (interned via ``interner``, a fresh one when not
    given) or pre-tokenised sequences.  ``grid.rouge_l[a, b]`` is bitwise
    equal to ``rouge_l(group_a[a], group_b[b]).f1``.
    """
    interner = interner if interner is not None else CorpusInterner()

    def as_interned(item: str | Sequence[str]) -> InternedText:
        if isinstance(item, str):
            return interner.intern(item)
        return interner.intern_tokens(item)

    return rouge_pair_grid(
        [as_interned(item) for item in group_a],
        [as_interned(item) for item in group_b],
    )


def _pair_counts(a: InternedText, b: InternedText) -> tuple[int, int, int]:
    """(unigram matches, bigram matches, lcs length) for one pair."""

    def clipped(x: np.ndarray, y: np.ndarray) -> int:
        if not len(x) or not len(y):
            return 0
        unique_x, counts_x = np.unique(x, return_counts=True)
        unique_y, counts_y = np.unique(y, return_counts=True)
        _, idx_x, idx_y = np.intersect1d(
            unique_x, unique_y, assume_unique=True, return_indices=True
        )
        return int(np.minimum(counts_x[idx_x], counts_y[idx_y]).sum())

    if len(a.ids) and len(b.ids):
        b_padded = b.ids[None, :]
        lcs = int(_lcs_row_grid(a.ids, b_padded, np.array([len(b.ids)]))[0])
    else:
        lcs = 0
    return clipped(a.ids, b.ids), clipped(a.bigrams, b.bigrams), lcs


def rouge_scores_interned(a: InternedText, b: InternedText) -> dict[str, RougeScore]:
    """Kernel twin of :func:`repro.text.rouge.rouge_scores` on interned texts.

    Returns full precision/recall/F1 triples built through the *same*
    :meth:`RougeScore.from_counts` scalar arithmetic as the reference.
    """
    unigram_matches, bigram_matches, lcs = _pair_counts(a, b)
    len_a, len_b = len(a.ids), len(b.ids)
    return {
        "rouge-1": RougeScore.from_counts(unigram_matches, len_a, len_b),
        "rouge-2": RougeScore.from_counts(
            bigram_matches, len(a.bigrams), len(b.bigrams)
        ),
        "rouge-l": RougeScore.from_counts(lcs, len_a, len_b),
    }


def rouge_scores_many(
    candidates: Sequence[str | Sequence[str]],
    references: Sequence[str | Sequence[str]],
    interner: CorpusInterner | None = None,
) -> list[dict[str, RougeScore]]:
    """Score aligned (candidate, reference) pairs with the kernel.

    The batch counterpart of calling
    :func:`repro.text.rouge.rouge_scores` in a loop; scores are bitwise
    identical to that loop.
    """
    if len(candidates) != len(references):
        raise ValueError(
            f"{len(candidates)} candidates vs {len(references)} references"
        )
    interner = interner if interner is not None else CorpusInterner()

    def as_interned(item: str | Sequence[str]) -> InternedText:
        if isinstance(item, str):
            return interner.intern(item)
        return interner.intern_tokens(item)

    return [
        rouge_scores_interned(as_interned(candidate), as_interned(reference))
        for candidate, reference in zip(candidates, references)
    ]
