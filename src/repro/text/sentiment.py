"""Window-based aspect-opinion extraction from review text.

For each sentence, locate aspect terms (stems in the vocabulary) and
opinion words (lexicon).  Each opinion word is attributed to the nearest
aspect term within a token window; a negation token shortly before the
opinion flips its sign and an intensifier scales its strength.  Aspects
with no attributed opinion become *neutral* mentions (sentiment 0), which
feed the 3-polarity opinion scheme.

The output plugs straight into :class:`repro.data.models.Review.mentions`,
so the whole selection pipeline can run off raw text alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Iterable, Sequence

from repro.data.corpus import Corpus
from repro.data.models import AspectMention, Review
from repro.text.aspects import AspectVocabulary
from repro.text.lexicon import intensity, is_negation, polarity
from repro.text.stemmer import stem
from repro.text.tokenize import sentences, tokenize


@dataclass(frozen=True, slots=True)
class ExtractionConfig:
    """Tuning knobs for the extractor."""

    attribution_window: int = 5
    negation_window: int = 3

    def __post_init__(self) -> None:
        if self.attribution_window < 1:
            raise ValueError("attribution_window must be >= 1")
        if self.negation_window < 0:
            raise ValueError("negation_window must be >= 0")


def _signed_opinion(tokens: Sequence[str], position: int, config: ExtractionConfig) -> float:
    """Signed strength of the opinion word at ``position`` in ``tokens``."""
    sign = polarity(tokens[position])
    strength = 1.0
    start = max(0, position - config.negation_window)
    for offset in range(start, position):
        if is_negation(tokens[offset]):
            sign = -sign
        strength *= intensity(tokens[offset])
    return sign * strength


def extract_mentions(
    text: str,
    vocabulary: AspectVocabulary,
    config: ExtractionConfig | None = None,
) -> tuple[AspectMention, ...]:
    """Extract (aspect, opinion) mentions from raw ``text``.

    Returns one mention per (aspect, sentence) pairing, aggregated to one
    mention per aspect across the review: the summed signed strength sets
    the sentiment sign (0 -> neutral mention).
    """
    config = config or ExtractionConfig()
    aspect_stems = vocabulary.stems
    totals: dict[str, float] = {}
    seen: set[str] = set()

    for sentence in sentences(text):
        tokens = tokenize(sentence)
        stems_in_sentence = [stem(token) for token in tokens]
        aspect_positions = [
            (index, stemmed)
            for index, stemmed in enumerate(stems_in_sentence)
            if stemmed in aspect_stems
        ]
        if not aspect_positions:
            continue
        for _, stemmed in aspect_positions:
            seen.add(stemmed)
        opinion_positions = [
            index for index, token in enumerate(tokens) if polarity(token) != 0
        ]
        for opinion_position in opinion_positions:
            nearest = min(
                aspect_positions,
                key=lambda pair: abs(pair[0] - opinion_position),
            )
            if abs(nearest[0] - opinion_position) > config.attribution_window:
                continue
            signed = _signed_opinion(tokens, opinion_position, config)
            totals[nearest[1]] = totals.get(nearest[1], 0.0) + signed

    mentions: list[AspectMention] = []
    for aspect in sorted(seen):
        total = totals.get(aspect, 0.0)
        if total > 0:
            mentions.append(AspectMention(aspect=aspect, sentiment=1, strength=abs(total)))
        elif total < 0:
            mentions.append(AspectMention(aspect=aspect, sentiment=-1, strength=abs(total)))
        else:
            mentions.append(AspectMention(aspect=aspect, sentiment=0, strength=1.0))
    return tuple(mentions)


def annotate_review(
    review: Review,
    vocabulary: AspectVocabulary,
    config: ExtractionConfig | None = None,
) -> Review:
    """Return a copy of ``review`` with mentions extracted from its text."""
    return replace(review, mentions=extract_mentions(review.text, vocabulary, config))


def annotate_corpus(
    corpus: Corpus,
    vocabulary: AspectVocabulary,
    config: ExtractionConfig | None = None,
) -> Corpus:
    """Re-annotate every review in ``corpus`` from raw text.

    Useful both for running the pipeline on external data that has no
    annotations, and for integration-testing the extractor against the
    synthetic generator's ground truth.
    """
    annotated = [
        annotate_review(review, vocabulary, config) for review in corpus.reviews
    ]
    return Corpus(name=corpus.name, products=corpus.products, reviews=annotated)


def agreement_with_ground_truth(
    annotated: Iterable[Review],
    ground_truth: Iterable[Review],
    aliases: dict[str, str] | None = None,
) -> float:
    """Fraction of ground-truth signed mentions recovered by the extractor.

    A ground-truth mention counts as recovered when the annotated review
    contains the same aspect (compared by stem, since the extractor emits
    stemmed aspects) with the same sentiment sign.  Reviews are paired by
    ``review_id``.

    ``aliases`` maps extracted surface stems to canonical aspect names —
    needed when the text renders aspects through synonyms (e.g. "charge"
    for battery); see
    :func:`repro.data.synthetic.surface_stem_aliases`.
    """
    aliases = aliases or {}
    truth_by_id = {review.review_id: review for review in ground_truth}
    matched = 0
    total = 0
    for review in annotated:
        truth = truth_by_id.get(review.review_id)
        if truth is None:
            continue
        extracted = {
            (stem(aliases.get(m.aspect, m.aspect)), m.sentiment)
            for m in review.mentions
        }
        for mention in truth.mentions:
            total += 1
            if (stem(mention.aspect), mention.sentiment) in extracted:
                matched += 1
    return matched / total if total else 0.0
