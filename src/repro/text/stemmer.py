"""A from-scratch implementation of the Porter stemming algorithm.

Porter, M.F. (1980) "An algorithm for suffix stripping", Program 14(3).
The implementation follows the original five-step description; it is used
by the aspect-mining pipeline to conflate surface variants ("batteries" ->
"batteri", "charging"/"charged" -> "charg") before frequency counting.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, index: int) -> bool:
    """Return True if ``word[index]`` acts as a consonant (Porter's defn)."""
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's measure m: the number of VC sequences in ``stem``."""
    count = 0
    previous_was_vowel = False
    for index in range(len(stem)):
        consonant = _is_consonant(stem, index)
        if consonant and previous_was_vowel:
            count += 1
        previous_was_vowel = not consonant
    return count


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """True if the word ends consonant-vowel-consonant, last not w/x/y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


class PorterStemmer:
    """Stateless Porter stemmer; use :meth:`stem` or the module-level alias."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (lowercased)."""
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step_1a(word)
        word = self._step_1b(word)
        word = self._step_1c(word)
        word = self._step_2(word)
        word = self._step_3(word)
        word = self._step_4(word)
        word = self._step_5a(word)
        word = self._step_5b(word)
        return word

    @staticmethod
    def _step_1a(word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step_1b(self, word: str) -> str:
        if word.endswith("eed"):
            if _measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and _contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and _contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if _ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if _measure(word) == 1 and _ends_cvc(word):
                return word + "e"
        return word

    @staticmethod
    def _step_1c(word: str) -> str:
        if word.endswith("y") and _contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
        ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
        ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
    )

    def _step_2(self, word: str) -> str:
        return self._replace_longest(word, self._STEP2_SUFFIXES, min_measure=1)

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step_3(self, word: str) -> str:
        return self._replace_longest(word, self._STEP3_SUFFIXES, min_measure=1)

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step_4(self, word: str) -> str:
        for suffix in sorted(self._STEP4_SUFFIXES, key=len, reverse=True):
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 1:
                    return stem
                return word
        if word.endswith("ion") and _measure(word[:-3]) > 1 and word[-4] in "st":
            return word[:-3]
        return word

    @staticmethod
    def _step_5a(word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = _measure(stem)
            if m > 1 or (m == 1 and not _ends_cvc(stem)):
                return stem
        return word

    @staticmethod
    def _step_5b(word: str) -> str:
        if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word

    @staticmethod
    def _replace_longest(
        word: str, suffixes: tuple[tuple[str, str], ...], min_measure: int
    ) -> str:
        for suffix, replacement in sorted(suffixes, key=lambda pair: len(pair[0]), reverse=True):
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) >= min_measure:
                    return stem + replacement
                return word
        return word


_DEFAULT_STEMMER = PorterStemmer()


def stem(word: str) -> str:
    """Stem ``word`` with a shared :class:`PorterStemmer` instance."""
    return _DEFAULT_STEMMER.stem(word)
