"""Word and sentence tokenisation utilities.

The tokeniser is intentionally simple and deterministic: lowercasing,
alphanumeric word extraction with intra-word apostrophes and hyphens
preserved ("don't", "glow-in-the-dark"), and a regex sentence splitter that
respects common abbreviations.  Review text in e-commerce corpora is noisy,
so robustness (never raising on arbitrary input) matters more than
linguistic perfection here.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator, Sequence

_WORD_RE = re.compile(r"[a-z0-9]+(?:['\-][a-z0-9]+)*")

# Common abbreviations that should not terminate a sentence.
_ABBREVIATIONS = frozenset(
    {"mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc", "e.g", "i.e", "inc", "ltd", "fig", "no"}
)

_SENTENCE_BOUNDARY_RE = re.compile(r"(?<=[.!?])\s+")


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase word tokens.

    >>> tokenize("The battery-life is GREAT, isn't it?")
    ['the', 'battery-life', 'is', 'great', "isn't", 'it']
    """
    return _WORD_RE.findall(text.lower())


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on ``.!?`` boundaries.

    Splits conservatively: a period following a known abbreviation or a
    single letter (initials) does not end a sentence.  Empty fragments are
    dropped.

    >>> sentences("Great phone. Battery lasts two days!")
    ['Great phone.', 'Battery lasts two days!']
    """
    pieces = _SENTENCE_BOUNDARY_RE.split(text.strip())
    merged: list[str] = []
    for piece in pieces:
        piece = piece.strip()
        if not piece:
            continue
        if merged and _ends_with_abbreviation(merged[-1]):
            merged[-1] = merged[-1] + " " + piece
        else:
            merged.append(piece)
    return merged


def _ends_with_abbreviation(fragment: str) -> bool:
    """Return True if ``fragment`` ends in an abbreviation-like token."""
    if not fragment.endswith("."):
        return False
    last = fragment[:-1].rsplit(None, 1)[-1].lower() if fragment[:-1].split() else ""
    return last in _ABBREVIATIONS or (len(last) == 1 and last.isalpha())


def ngrams(tokens: Sequence[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield the ``n``-grams of ``tokens`` in order.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for start in range(len(tokens) - n + 1):
        yield tuple(tokens[start : start + n])


def vocabulary(token_lists: Iterable[Sequence[str]]) -> set[str]:
    """Return the set of distinct tokens across all token lists."""
    vocab: set[str] = set()
    for tokens in token_lists:
        vocab.update(tokens)
    return vocab
