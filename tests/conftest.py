"""Shared fixtures: small deterministic corpora, instances, configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SelectionConfig
from repro.data.corpus import Corpus
from repro.data.instances import ComparisonInstance, build_instances
from repro.data.models import AspectMention, Product, Review
from repro.data.synthetic import generate_corpus


def make_review(
    review_id: str,
    product_id: str,
    mentions: list[tuple[str, int]],
    rating: float = 4.0,
    text: str | None = None,
    reviewer: str = "U0",
) -> Review:
    """Terse review builder for hand-crafted test scenarios."""
    if text is None:
        text = " ".join(f"The {aspect} is discussed." for aspect, _ in mentions) or "Nothing."
    return Review(
        review_id=review_id,
        product_id=product_id,
        reviewer_id=reviewer,
        rating=rating,
        text=text,
        mentions=tuple(
            AspectMention(aspect=aspect, sentiment=sentiment) for aspect, sentiment in mentions
        ),
    )


@pytest.fixture(scope="session")
def cellphone_corpus() -> Corpus:
    """A small synthetic Cellphone corpus (session-cached for speed)."""
    return generate_corpus("Cellphone", scale=0.35, seed=7)


@pytest.fixture(scope="session")
def instances(cellphone_corpus) -> list[ComparisonInstance]:
    """A handful of comparison instances from the shared corpus."""
    return list(
        build_instances(
            cellphone_corpus, max_instances=6, max_comparisons=5, min_reviews=3
        )
    )


@pytest.fixture()
def instance(instances) -> ComparisonInstance:
    return instances[0]


@pytest.fixture()
def config() -> SelectionConfig:
    return SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture()
def paper_example_instance() -> ComparisonInstance:
    """The spirit of the paper's Working Example 1 (Fig. 2a), item p_1.

    R_1 has 7 reviews over aspects {battery, lens, quality}: aspect counts
    {6, 4, 4} and opinion counts battery(+2, -4), lens(+2, -2),
    quality(+2, -2), so tau_1 = (2/6, 4/6, 2/6, 2/6, 2/6, 2/6) over the
    interleaved (battery+, battery-, lens+, lens-, quality+, quality-)
    axes and Gamma = (6/6, 4/6, 4/6).  The subset {r5, r6, r7} reproduces
    both exactly (pi = tau, phi = Gamma).
    """
    p1 = Product(product_id="p1", title="Camera A", category="Camera")
    reviews = (
        make_review("r1", "p1", [("battery", 1), ("lens", 1)]),
        make_review("r2", "p1", [("battery", -1), ("lens", -1)]),
        make_review("r3", "p1", [("battery", -1), ("quality", 1)]),
        make_review("r4", "p1", [("quality", -1)]),
        make_review("r5", "p1", [("battery", 1), ("lens", 1), ("quality", 1)]),
        make_review("r6", "p1", [("battery", -1), ("lens", -1), ("quality", -1)]),
        make_review("r7", "p1", [("battery", -1)]),
    )
    return ComparisonInstance(products=(p1,), reviews=(reviews,))
