"""Tests for ROUGE-based review-alignment measurement."""

import pytest

from repro.core.selection import SelectionResult
from repro.data.instances import ComparisonInstance
from repro.data.models import Product
from repro.eval.alignment import (
    AlignmentScores,
    among_items_alignment,
    mean_alignment,
    target_vs_comparative_alignment,
)
from repro.text.rouge import rouge_l, rouge_n
from tests.conftest import make_review


def two_item_result(text_a: str, text_b: str) -> SelectionResult:
    p1 = Product(product_id="p1", title="A", category="C")
    p2 = Product(product_id="p2", title="B", category="C")
    r1 = make_review("r1", "p1", [("x", 1)], text=text_a)
    r2 = make_review("r2", "p2", [("x", 1)], text=text_b)
    instance = ComparisonInstance(products=(p1, p2), reviews=((r1,), (r2,)))
    return SelectionResult(instance=instance, selections=((0,), (0,)), algorithm="t")


class TestTargetVsComparative:
    def test_single_pair_matches_direct_rouge(self):
        a, b = "the battery is great", "the battery is poor"
        result = two_item_result(a, b)
        scores = target_vs_comparative_alignment(result)
        assert scores.num_pairs == 1
        assert scores.rouge_1 == pytest.approx(rouge_n(a, b, 1).f1)
        assert scores.rouge_l == pytest.approx(rouge_l(a, b).f1)

    def test_identical_reviews_score_one(self):
        result = two_item_result("same text here", "same text here")
        scores = target_vs_comparative_alignment(result)
        assert scores.rouge_1 == pytest.approx(1.0)

    def test_two_item_instance_equals_among_items(self):
        """With exactly two items the two views coincide."""
        result = two_item_result("the battery is great", "screen was poor")
        target_view = target_vs_comparative_alignment(result)
        among_view = among_items_alignment(result)
        assert target_view == among_view

    def test_empty_selection_yields_zero_pairs(self, instance):
        result = SelectionResult(
            instance=instance,
            selections=tuple(() for _ in range(instance.num_items)),
            algorithm="t",
        )
        assert target_vs_comparative_alignment(result).num_pairs == 0
        assert among_items_alignment(result).num_pairs == 0

    def test_pair_counting_on_real_result(self, instance, config, rng):
        from repro.core.baselines import RandomSelector

        result = RandomSelector().select(instance, config, rng=rng)
        sizes = [len(s) for s in result.selections]
        expected_target_pairs = sizes[0] * sum(sizes[1:])
        expected_among_pairs = sum(
            sizes[i] * sizes[j]
            for i in range(len(sizes) - 1)
            for j in range(i + 1, len(sizes))
        )
        assert target_vs_comparative_alignment(result).num_pairs == expected_target_pairs
        assert among_items_alignment(result).num_pairs == expected_among_pairs


class TestMeanAlignment:
    def test_averages(self):
        scores = [
            AlignmentScores(0.2, 0.1, 0.15, num_pairs=4),
            AlignmentScores(0.4, 0.3, 0.25, num_pairs=2),
        ]
        mean = mean_alignment(scores)
        assert mean.rouge_1 == pytest.approx(0.3)
        assert mean.num_pairs == 6

    def test_skips_empty_instances(self):
        scores = [
            AlignmentScores(0.2, 0.1, 0.15, num_pairs=4),
            AlignmentScores(0.0, 0.0, 0.0, num_pairs=0),
        ]
        assert mean_alignment(scores).rouge_1 == pytest.approx(0.2)

    def test_all_empty(self):
        assert mean_alignment([]).num_pairs == 0

    def test_scaled(self):
        scores = AlignmentScores(0.16, 0.013, 0.085, num_pairs=1)
        assert scores.scaled() == pytest.approx((16.0, 1.3, 8.5))
