"""Tests for the McAuley Amazon-format converters."""

import json

import pytest

from repro.data.amazon import convert_amazon, iter_records, load_metadata, load_reviews


@pytest.fixture()
def amazon_files(tmp_path):
    """A miniature strict-JSON reviews + metadata dump pair."""
    metadata = [
        {
            "asin": "B001",
            "title": "Acme Car Charger",
            "related": {"also_bought": ["B002", "B003", "B001"]},
        },
        {"asin": "B002", "title": "Bolt USB Cable"},
        # Python-literal style record (older dumps)
        "{'asin': 'B003', 'title': 'Zap Power Bank', 'related': {'also_bought': ['B001']}}",
        {"asin": "B001", "title": "duplicate, ignored"},
    ]
    reviews = [
        {
            "reviewerID": "U1",
            "asin": "B001",
            "reviewText": "The charger is great and the charging speed holds up.",
            "overall": 5.0,
        },
        {
            "reviewerID": "U2",
            "asin": "B001",
            "reviewText": "The cable is flimsy and the cord shows it.",
            "overall": 2.0,
        },
        {"reviewerID": "U1", "asin": "B002", "summary": "works fine", "overall": 4.0},
        {"reviewerID": "U3", "asin": "B999", "reviewText": "orphan", "overall": 3.0},
        {"asin": "B001", "reviewText": "no reviewer id", "overall": 3.0},
    ]
    meta_path = tmp_path / "meta.jsonl"
    meta_path.write_text(
        "\n".join(m if isinstance(m, str) else json.dumps(m) for m in metadata)
    )
    reviews_path = tmp_path / "reviews.jsonl"
    reviews_path.write_text("\n".join(json.dumps(r) for r in reviews))
    return reviews_path, meta_path


class TestIterRecords:
    def test_mixed_formats(self, amazon_files):
        _, meta_path = amazon_files
        records = list(iter_records(meta_path))
        assert len(records) == 4
        assert records[2]["asin"] == "B003"

    def test_invalid_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not a record\n")
        with pytest.raises(ValueError, match="neither JSON"):
            list(iter_records(path))

    def test_non_dict_literal(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not an object"):
            list(iter_records(path))


class TestLoadMetadata:
    def test_products_and_also_bought(self, amazon_files):
        _, meta_path = amazon_files
        products = load_metadata(meta_path, category="Cellphone")
        assert [p.product_id for p in products] == ["B001", "B002", "B003"]
        # self-reference dropped, duplicates ignored
        assert products[0].also_bought == ("B002", "B003")
        assert products[0].category == "Cellphone"

    def test_title_fallback(self, tmp_path):
        path = tmp_path / "meta.jsonl"
        path.write_text(json.dumps({"asin": "B010"}))
        assert load_metadata(path)[0].title == "B010"


class TestLoadReviews:
    def test_filters_orphans_and_missing_ids(self, amazon_files):
        reviews_path, meta_path = amazon_files
        known = {p.product_id for p in load_metadata(meta_path)}
        reviews = load_reviews(reviews_path, known)
        assert len(reviews) == 3
        assert all(r.product_id in known for r in reviews)

    def test_summary_fallback(self, amazon_files):
        reviews_path, meta_path = amazon_files
        known = {p.product_id for p in load_metadata(meta_path)}
        by_product = {r.product_id: r for r in load_reviews(reviews_path, known)}
        assert by_product["B002"].text == "works fine"


class TestConvertAmazon:
    def test_full_conversion_with_annotation(self, amazon_files):
        reviews_path, meta_path = amazon_files
        corpus = convert_amazon(
            reviews_path,
            meta_path,
            category="Cellphone",
            candidate_pool=50,
            keep=20,
            min_document_frequency=1,  # the fixture corpus is tiny
        )
        assert len(corpus.products) == 3
        assert len(corpus.reviews) == 3
        # The charger/cable reviews carry mined annotations.
        annotated = [r for r in corpus.reviews if r.mentions]
        assert annotated

    def test_conversion_without_annotation(self, amazon_files):
        reviews_path, meta_path = amazon_files
        corpus = convert_amazon(reviews_path, meta_path, annotate=False)
        assert all(not r.mentions for r in corpus.reviews)

    def test_feeds_instance_builder(self, amazon_files):
        from repro.data.instances import build_instance

        reviews_path, meta_path = amazon_files
        corpus = convert_amazon(
            reviews_path, meta_path, candidate_pool=50, keep=20,
            min_document_frequency=1,
        )
        instance = build_instance(corpus, "B001", min_reviews=1)
        assert instance is not None
        assert instance.num_items >= 2
