"""Tests for frequency-based aspect mining."""

import pytest

from repro.data.models import Review
from repro.text.aspects import (
    AspectVocabulary,
    aspect_index,
    candidate_tokens,
    mine_aspects,
)


def review(review_id: str, text: str, rating: float) -> Review:
    return Review(
        review_id=review_id,
        product_id="p1",
        reviewer_id="u1",
        rating=rating,
        text=text,
    )


def planted_reviews() -> list[Review]:
    """'battery' correlates positively with rating, 'shipping' negatively."""
    reviews = []
    for i in range(10):
        reviews.append(review(f"hi{i}", "the battery lasts long, battery impressed me", 5.0))
        reviews.append(review(f"lo{i}", "the shipping was slow and the shipping box dented", 1.0))
        reviews.append(review(f"mid{i}", "the screen and the case arrived", 3.0))
    return reviews


class TestCandidateTokens:
    def test_removes_stopwords_and_opinion_words(self):
        tokens = candidate_tokens("The battery is great and the screen is terrible")
        assert "batteri" in tokens  # stemmed
        assert "screen" in tokens
        assert "great" not in tokens
        assert "the" not in tokens

    def test_stems(self):
        assert "batteri" in candidate_tokens("batteries everywhere")

    def test_digits_removed(self):
        assert candidate_tokens("1080 pixels") == ["pixel"]


class TestMineAspects:
    def test_planted_aspects_found(self):
        vocabulary = mine_aspects(planted_reviews(), candidate_pool=50, keep=10)
        stems = vocabulary.stems
        assert "batteri" in stems
        assert "ship" in stems

    def test_correlation_signs(self):
        vocabulary = mine_aspects(planted_reviews(), candidate_pool=50, keep=10)
        by_stem = {t.stem: t for t in vocabulary.terms}
        assert by_stem["batteri"].rating_correlation > 0
        assert by_stem["ship"].rating_correlation < 0

    def test_sorted_by_absolute_correlation(self):
        vocabulary = mine_aspects(planted_reviews(), candidate_pool=50, keep=10)
        correlations = [abs(t.rating_correlation) for t in vocabulary.terms]
        assert correlations == sorted(correlations, reverse=True)

    def test_keep_limits_size(self):
        vocabulary = mine_aspects(planted_reviews(), candidate_pool=50, keep=2)
        assert len(vocabulary) == 2

    def test_min_document_frequency(self):
        reviews = planted_reviews() + [review("rare", "the quux device", 3.0)]
        vocabulary = mine_aspects(reviews, candidate_pool=50, keep=50, min_document_frequency=2)
        assert "quux" not in vocabulary.stems

    def test_empty_input(self):
        assert len(mine_aspects([])) == 0

    def test_surface_form_is_most_frequent(self):
        vocabulary = mine_aspects(planted_reviews(), candidate_pool=50, keep=10)
        assert vocabulary.surface_of("batteri") == "battery"

    def test_surface_of_unknown_raises(self):
        vocabulary = mine_aspects(planted_reviews(), candidate_pool=50, keep=5)
        with pytest.raises(KeyError):
            vocabulary.surface_of("nonexistent")

    def test_contains_uses_stemming(self):
        vocabulary = mine_aspects(planted_reviews(), candidate_pool=50, keep=10)
        assert "batteries" in vocabulary

    def test_synthetic_corpus_recovery(self, cellphone_corpus):
        """Mining the synthetic corpus recovers its dominant aspect terms."""
        vocabulary = mine_aspects(
            list(cellphone_corpus.reviews)[:300], candidate_pool=300, keep=120
        )
        stems = vocabulary.stems
        recovered = sum(
            1 for planted in ("batteri", "screen", "charger", "price") if planted in stems
        )
        assert recovered >= 2


class TestAspectIndex:
    def test_from_vocabulary(self):
        vocabulary = mine_aspects(planted_reviews(), candidate_pool=50, keep=5)
        index = aspect_index(vocabulary)
        assert sorted(index.values()) == list(range(len(vocabulary)))

    def test_from_plain_list(self):
        assert aspect_index(["a", "b"]) == {"a": 0, "b": 1}
