"""Tests for the baseline selectors: CRS, greedy, random."""

import numpy as np
import pytest

from repro.core.baselines import CrsSelector, GreedySelector, RandomSelector
from repro.core.objective import item_objective
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space


class TestCrs:
    def test_ignores_lambda(self, instance):
        """CRS is the lambda = 0 special case; lam in the config is moot."""
        a = CrsSelector().select(instance, SelectionConfig(max_reviews=3, lam=0.5))
        b = CrsSelector().select(instance, SelectionConfig(max_reviews=3, lam=7.0))
        assert a.selections == b.selections

    def test_near_optimal_on_paper_example(self, paper_example_instance):
        """CRS (a heuristic) lands close to the brute-force optimum.

        NOMP's greedy atom choice can miss the exact optimum (here 0.0 via
        {r5, r6, r7}); the paper's algorithm is approximate by design, so
        we assert proximity rather than exactness.
        """
        from itertools import combinations

        from repro.core.distance import squared_l2

        config = SelectionConfig(max_reviews=3)
        result = CrsSelector().select(paper_example_instance, config)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)

        def opinion_cost(subset):
            return squared_l2(tau, space.opinion_vector(list(subset)))

        brute = min(
            opinion_cost(combo)
            for size in (1, 2, 3)
            for combo in combinations(reviews, size)
        )
        achieved = opinion_cost(result.selected_reviews(0))
        assert achieved <= brute + 0.15

    def test_budget(self, instance, config):
        result = CrsSelector().select(instance, config)
        assert all(len(s) <= config.max_reviews for s in result.selections)


class TestGreedy:
    def test_budget_and_determinism(self, instance, config):
        selector = GreedySelector()
        a = selector.select(instance, config)
        b = selector.select(instance, config)
        assert a.selections == b.selections
        assert all(len(s) <= config.max_reviews for s in a.selections)

    def test_improves_over_empty(self, instance, config):
        space = build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        result = GreedySelector().select(instance, config)
        for item_index, reviews in enumerate(instance.reviews):
            tau = space.opinion_vector(reviews)
            empty_cost = item_objective(space, [], tau, gamma, config.lam)
            final_cost = item_objective(
                space,
                list(result.selected_reviews(item_index)),
                tau,
                gamma,
                config.lam,
            )
            assert final_cost <= empty_cost + 1e-9

    def test_exhaustive_variant_fills_budget(self, instance, config):
        selector = GreedySelector(stop_when_no_improvement=False)
        result = selector.select(instance, config)
        for selection, reviews in zip(result.selections, instance.reviews):
            assert len(selection) == min(config.max_reviews, len(reviews))

    def test_greedy_is_stepwise_optimal_for_one_step(self, paper_example_instance):
        """With m = 1 greedy picks the single best review."""
        config = SelectionConfig(max_reviews=1)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)
        result = GreedySelector().select(paper_example_instance, config)
        chosen_cost = item_objective(
            space, list(result.selected_reviews(0)), tau, gamma, config.lam
        )
        best_single = min(
            item_objective(space, [r], tau, gamma, config.lam) for r in reviews
        )
        assert chosen_cost == pytest.approx(best_single)


class TestRandom:
    def test_sizes(self, instance, config, rng):
        result = RandomSelector().select(instance, config, rng=rng)
        for selection, reviews in zip(result.selections, instance.reviews):
            assert len(selection) == min(config.max_reviews, len(reviews))

    def test_seeded_rng_reproducible(self, instance, config):
        a = RandomSelector().select(instance, config, rng=np.random.default_rng(42))
        b = RandomSelector().select(instance, config, rng=np.random.default_rng(42))
        assert a.selections == b.selections

    def test_constructor_seed(self, instance, config):
        a = RandomSelector(seed=1).select(instance, config)
        b = RandomSelector(seed=1).select(instance, config)
        assert a.selections == b.selections

    def test_different_seeds_usually_differ(self, instance, config):
        a = RandomSelector(seed=1).select(instance, config)
        b = RandomSelector(seed=2).select(instance, config)
        assert a.selections != b.selections

    def test_indices_valid_and_distinct(self, instance, config, rng):
        result = RandomSelector().select(instance, config, rng=rng)
        for selection, reviews in zip(result.selections, instance.reviews):
            assert len(set(selection)) == len(selection)
            assert all(0 <= j < len(reviews) for j in selection)
