"""Equivalence harness for the cross-request batch solver.

Two contracts are pinned here.  First, the multi-RHS kernel
(``batch_omp_many`` and the ``select_many`` driver above it) must be
byte-identical in exact mode to solving every request alone through
``batch_omp_path`` / the sequential selectors — across schemes, mixed
(m, mu, sweeps, variant) parameter batches, duplicate-heavy and
zero-column instances.  Second, the large-N candidate pre-screen must
preserve the exact OMP support: the provable mode bitwise, up to
N = 10k columns, against the unscreened pursuit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_solver import BATCHABLE_ALGORITHMS, BatchJob, select_many
from repro.core.compare_sets import CompareSetsSelector
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.integer_regression import deduplicate_columns, nomp_path
from repro.core.omp_kernel import (
    _SCREEN_KEEP_MIN,
    SolverArtifacts,
    StageTimer,
    _screen_active,
    _screened_omp_path,
    batch_omp_many,
    batch_omp_path,
    solve_item,
    solve_plus_item,
)
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space
from repro.core.vectors import OpinionScheme
from tests.test_omp_kernel import random_instance


def _assert_paths_bitwise(ours: list[np.ndarray], theirs: list[np.ndarray]) -> None:
    assert len(ours) == len(theirs)
    for mine, ref in zip(ours, theirs):
        assert mine.tobytes() == ref.tobytes()


@st.composite
def shared_gram_batch(draw):
    """One incidence-like matrix plus 1-4 (target, budget) problems."""
    rows = draw(st.integers(min_value=1, max_value=10))
    cols = draw(st.integers(min_value=1, max_value=10))
    cells = draw(
        st.lists(
            st.sampled_from([0.0, 0.5, 1.0]),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    matrix = np.array(cells).reshape(rows, cols)
    problems = draw(
        st.lists(
            st.tuples(
                st.lists(
                    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
                    min_size=rows,
                    max_size=rows,
                ),
                st.integers(min_value=1, max_value=6),
            ),
            min_size=1,
            max_size=4,
        )
    )
    targets = [np.array(target) for target, _ in problems]
    budgets = [budget for _, budget in problems]
    return matrix, targets, budgets


class TestBatchOmpMany:
    @settings(max_examples=60, deadline=None)
    @given(shared_gram_batch())
    def test_exact_mode_bitwise_matches_sequential(self, batch):
        matrix, targets, budgets = batch
        unique = deduplicate_columns(matrix).matrix
        gram = unique.T @ unique
        bs = [unique.T @ target for target in targets]
        many = batch_omp_many(gram, bs, budgets, unique, targets, exact=True)
        for index, target in enumerate(targets):
            alone = batch_omp_path(
                gram, bs[index], budgets[index], unique, target, exact=True
            )
            _assert_paths_bitwise(many[index], alone)

    def test_duplicate_targets_slice_the_leader_path(self):
        rng = np.random.default_rng(11)
        matrix = (rng.random((12, 9)) < 0.4).astype(float)
        unique = deduplicate_columns(matrix).matrix
        target = rng.random(12) * 2
        gram = unique.T @ unique
        b = unique.T @ target
        many = batch_omp_many(
            gram, [b, b, b], [2, 5, 1], unique, [target, target, target]
        )
        for budget, path in zip([2, 5, 1], many):
            alone = batch_omp_path(gram, b, budget, unique, target)
            _assert_paths_bitwise(path, alone)
        # The budget-2 path is a prefix of the budget-5 path (OMP is greedy).
        _assert_paths_bitwise(many[0], many[1][:2])

    def test_empty_batch_and_empty_matrix(self):
        assert batch_omp_many(np.zeros((0, 0)), [], [], np.zeros((3, 0)), []) == []
        empty = np.zeros((3, 0))
        gram = np.zeros((0, 0))
        paths = batch_omp_many(gram, [np.zeros(0)], [2], empty, [np.zeros(3)])
        assert paths == [[]]

    def test_rejects_non_square_gram_and_ragged_batch(self):
        one = np.ones((3, 1))
        gram = one.T @ one
        b = one.T @ np.ones(3)
        with pytest.raises(ValueError):
            batch_omp_many(np.zeros((2, 3)), [b], [1], one, [np.ones(3)])
        with pytest.raises(ValueError):
            batch_omp_many(gram, [b, b], [1], one, [np.ones(3)])

    def test_fast_mode_stays_feasible(self):
        """exact=False keeps the fast path's caveat: ties may break
        differently, but every path must stay a valid NOMP path."""
        rng = np.random.default_rng(5)
        matrix = (rng.random((12, 9)) < 0.4).astype(float)
        unique = deduplicate_columns(matrix).matrix
        targets = [rng.random(12) * 2 for _ in range(3)]
        gram = unique.T @ unique
        bs = [unique.T @ target for target in targets]
        many = batch_omp_many(gram, bs, [5, 3, 4], unique, targets, exact=False)
        for path in many:
            for step, x in enumerate(path):
                assert np.all(x >= 0)
                assert len(np.flatnonzero(x)) <= step + 1


def _mixed_jobs() -> list[BatchJob]:
    return [
        BatchJob("CompaReSetS", SelectionConfig(max_reviews=1)),
        BatchJob("CompaReSetS", SelectionConfig(max_reviews=4)),
        BatchJob("CompaReSetS+", SelectionConfig(max_reviews=3, mu=0.1)),
        BatchJob(
            "CompaReSetS+",
            SelectionConfig(max_reviews=2, mu=0.5, sweeps=2),
            variant="weighted",
        ),
        # A duplicate of job 2: dedup inside the multi-RHS rounds must not
        # perturb anyone.
        BatchJob("CompaReSetS+", SelectionConfig(max_reviews=3, mu=0.1)),
    ]


def _sequential_reference(instance, job, scheme):
    """One job solved alone, with fresh artifacts so the memo cannot help."""
    config = SelectionConfig(
        max_reviews=job.config.max_reviews,
        lam=job.config.lam,
        mu=job.config.mu,
        scheme=scheme,
        sweeps=job.config.sweeps,
    )
    if job.algorithm == "CompaReSetS":
        return CompareSetsSelector().select(instance, config)
    return CompareSetsPlusSelector(variant=job.variant).select(instance, config)


class TestSelectMany:
    @pytest.mark.parametrize("scheme", list(OpinionScheme))
    def test_matches_sequential_selectors(self, scheme):
        for trial in range(3):
            rng = np.random.default_rng(100 + trial)
            instance = random_instance(
                rng, num_items=3, max_reviews=8, duplicate_heavy=trial % 2 == 1
            )
            jobs = [
                BatchJob(
                    job.algorithm,
                    SelectionConfig(
                        max_reviews=job.config.max_reviews,
                        lam=job.config.lam,
                        mu=job.config.mu,
                        scheme=scheme,
                        sweeps=job.config.sweeps,
                    ),
                    variant=job.variant,
                )
                for job in _mixed_jobs()
            ]
            config = jobs[0].config
            space = build_space(instance, config)
            artifacts = tuple(
                SolverArtifacts(space, reviews, config.lam)
                for reviews in instance.reviews
            )
            results = select_many(
                instance, jobs, space=space, solver_artifacts=artifacts
            )
            for job, result in zip(jobs, results):
                reference = _sequential_reference(instance, job, scheme)
                assert result.selections == reference.selections
                assert result.algorithm == job.algorithm

    def test_zero_column_instance(self):
        rng = np.random.default_rng(7)
        instance = random_instance(rng, num_items=2, mention_free_rate=1.0)
        config = SelectionConfig()
        space = build_space(instance, config)
        artifacts = tuple(
            SolverArtifacts(space, reviews, config.lam)
            for reviews in instance.reviews
        )
        jobs = [
            BatchJob("CompaReSetS", config),
            BatchJob("CompaReSetS+", config),
        ]
        results = select_many(instance, jobs, space=space, solver_artifacts=artifacts)
        for job, result in zip(jobs, results):
            reference = _sequential_reference(instance, job, config.scheme)
            assert result.selections == reference.selections

    def test_timings_and_counters_surface(self):
        rng = np.random.default_rng(21)
        instance = random_instance(rng, num_items=2)
        config = SelectionConfig()
        space = build_space(instance, config)
        artifacts = tuple(
            SolverArtifacts(space, reviews, config.lam)
            for reviews in instance.reviews
        )
        timer = StageTimer()
        timer.count("screen_total", 5)
        [result] = select_many(
            instance,
            [BatchJob("CompaReSetS", config)],
            space=space,
            solver_artifacts=artifacts,
            timer=timer,
        )
        assert result.timings is not None and "pursuit" in result.timings
        assert result.counters == {"screen_total": 5}

    def test_validation_errors(self):
        rng = np.random.default_rng(3)
        instance = random_instance(rng, num_items=2)
        config = SelectionConfig()
        space = build_space(instance, config)
        artifacts = tuple(
            SolverArtifacts(space, reviews, config.lam)
            for reviews in instance.reviews
        )
        good = [BatchJob("CompaReSetS", config)]
        with pytest.raises(ValueError, match="not batchable"):
            select_many(
                instance,
                [BatchJob("Random", config)],
                space=space,
                solver_artifacts=artifacts,
            )
        with pytest.raises(ValueError, match="variant"):
            select_many(
                instance,
                [BatchJob("CompaReSetS+", config, variant="bogus")],
                space=space,
                solver_artifacts=artifacts,
            )
        with pytest.raises(ValueError, match="artifacts"):
            select_many(
                instance, good, space=space, solver_artifacts=artifacts[:1]
            )
        mismatched = tuple(
            SolverArtifacts(space, reviews, 2.0) for reviews in instance.reviews
        )
        with pytest.raises(ValueError, match="do not match"):
            select_many(
                instance, good, space=space, solver_artifacts=mismatched
            )
        assert "CompaReSetS" in BATCHABLE_ALGORITHMS


class TestSolveManyDispatcher:
    def test_mixed_kinds_match_single_solves(self):
        rng = np.random.default_rng(17)
        instance = random_instance(rng, num_items=3, max_reviews=8)
        config = SelectionConfig()
        space = build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        tau = space.opinion_vector(instance.reviews[0])
        other_phis = [
            space.aspect_vector(reviews) for reviews in instance.reviews[1:]
        ]
        batched = SolverArtifacts(space, instance.reviews[0], config.lam)
        jobs = [
            ("item", tau, gamma, config),
            ("plus", tau, gamma, other_phis, config, (), True),
            ("item", tau, gamma, SelectionConfig(max_reviews=5)),
        ]
        results = batched.solve_many(jobs)
        fresh = SolverArtifacts(space, instance.reviews[0], config.lam)
        assert results[0].selected == solve_item(fresh, tau, gamma, config).selected
        assert results[1] == solve_plus_item(
            fresh, tau, gamma, other_phis, config, current=(), literal=True
        )
        assert (
            results[2].selected
            == solve_item(fresh, tau, gamma, SelectionConfig(max_reviews=5)).selected
        )

    def test_unknown_kind_rejected(self):
        rng = np.random.default_rng(2)
        instance = random_instance(rng, num_items=1)
        config = SelectionConfig()
        space = build_space(instance, config)
        artifacts = SolverArtifacts(space, instance.reviews[0], config.lam)
        with pytest.raises(ValueError, match="job kind"):
            artifacts.solve_many([("bogus",)])


def _wide_problem(seed: int, columns: int, rows: int = 24):
    """A dedup-free nonnegative incidence-like pursuit problem."""
    rng = np.random.default_rng(seed)
    stacked = rng.choice([0.0, 0.5, 1.0], size=(rows, columns), p=[0.6, 0.2, 0.2])
    stacked = deduplicate_columns(stacked).matrix
    target = rng.random(rows) * 2
    return stacked, target


class TestPreScreen:
    def test_screen_active_gating(self):
        assert not _screen_active("off", 10**6, True)
        assert not _screen_active("provable", 10**6, False)  # exact mode only
        assert not _screen_active("auto", 2047, True)
        assert _screen_active("auto", 2048, True)
        assert _screen_active("provable", 3, True)
        assert _screen_active("empirical", 3, True)

    def test_invalid_mode_rejected(self):
        rng = np.random.default_rng(1)
        instance = random_instance(rng, num_items=1)
        config = SelectionConfig()
        space = build_space(instance, config)
        with pytest.raises(ValueError, match="screen"):
            SolverArtifacts(
                space, instance.reviews[0], config.lam, screen="sometimes"
            )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_provable_screen_bitwise_at_moderate_n(self, seed):
        stacked, target = _wide_problem(seed, columns=900)
        assert stacked.shape[1] > _SCREEN_KEEP_MIN  # pruning is real
        budget = 12
        gram = stacked.T @ stacked
        b = stacked.T @ target
        reference = batch_omp_path(gram, b, budget, stacked, target, exact=True)
        timer = StageTimer()
        screened = _screened_omp_path(
            stacked,
            target,
            budget,
            np.linalg.norm(stacked, axis=0),
            empirical=False,
            nonneg=True,
            timer=timer,
        )
        _assert_paths_bitwise(screened, reference)
        assert timer.counters["screen_total"] == stacked.shape[1]
        assert timer.counters["screen_kept"] < stacked.shape[1]

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        columns=st.integers(min_value=300, max_value=1500),
        budget=st.integers(min_value=1, max_value=8),
    )
    def test_support_preservation_property(self, seed, columns, budget):
        stacked, target = _wide_problem(seed, columns=columns)
        gram = stacked.T @ stacked
        b = stacked.T @ target
        reference = batch_omp_path(gram, b, budget, stacked, target, exact=True)
        screened = _screened_omp_path(
            stacked,
            target,
            budget,
            np.linalg.norm(stacked, axis=0),
            empirical=False,
            nonneg=True,
            timer=StageTimer(),
        )
        _assert_paths_bitwise(screened, reference)

    def test_support_preservation_at_ten_thousand_columns(self):
        stacked, target = _wide_problem(99, columns=10_000, rows=32)
        budget = 6
        # The Gram-free naive reference (O(q D) per round) stands in for
        # batch_omp_path, whose O(q^2) Gram is the very cost the screen
        # avoids; the kernel is pinned bitwise to nomp_path elsewhere.
        reference = nomp_path(stacked, target, budget)
        screened = _screened_omp_path(
            stacked,
            target,
            budget,
            np.linalg.norm(stacked, axis=0),
            empirical=False,
            nonneg=True,
            timer=StageTimer(),
        )
        _assert_paths_bitwise(screened, reference)

    def test_empirical_mode_smoke(self):
        """``screen="empirical"`` has no certificate: it preserves the
        support on benign inputs but only promises a *valid* pursuit path
        (non-negative coefficients, support growing one atom a step)."""
        stacked, target = _wide_problem(5, columns=700)
        budget = 4
        gram = stacked.T @ stacked
        b = stacked.T @ target
        reference = batch_omp_path(gram, b, budget, stacked, target, exact=True)
        screened = _screened_omp_path(
            stacked,
            target,
            budget,
            np.linalg.norm(stacked, axis=0),
            empirical=True,
            nonneg=True,
            timer=StageTimer(),
        )
        for mine, ref in zip(screened, reference):
            assert np.array_equal(mine, ref)
        # An adversarial target where empirical does diverge: the path
        # must still be structurally sound.
        stacked, target = _wide_problem(0, columns=700)
        path = _screened_omp_path(
            stacked,
            target,
            10,
            np.linalg.norm(stacked, axis=0),
            empirical=True,
            nonneg=True,
            timer=StageTimer(),
        )
        assert 0 < len(path) <= 10
        for step, x in enumerate(path):
            assert np.all(x >= 0)
            assert len(np.flatnonzero(x)) <= step + 1

    def test_artifacts_screen_matches_off(self):
        """End-to-end through solve_item: provable screen == no screen."""
        rng = np.random.default_rng(31)
        instance = random_instance(rng, num_items=1, max_reviews=400)
        config = SelectionConfig(max_reviews=3)
        space = build_space(instance, config)
        reviews = instance.reviews[0]
        gamma = space.aspect_vector(reviews)
        tau = space.opinion_vector(reviews)
        plain = SolverArtifacts(space, reviews, config.lam, screen="off")
        screened = SolverArtifacts(space, reviews, config.lam, screen="provable")
        timer = StageTimer()
        ours = solve_item(screened, tau, gamma, config, timer=timer)
        reference = solve_item(plain, tau, gamma, config)
        assert ours.selected == reference.selected
        assert ours.objective == reference.objective
        if screened.base_block().num_groups > _SCREEN_KEEP_MIN:
            assert timer.counters.get("screen_total", 0) > 0
