"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.bootstrap import bootstrap_difference, bootstrap_mean


class TestBootstrapMean:
    def test_interval_contains_sample_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 1.0, 100)
        interval = bootstrap_mean(data)
        assert interval.low <= interval.mean <= interval.high
        assert interval.contains(float(data.mean()))

    def test_tighter_with_more_data(self):
        rng = np.random.default_rng(1)
        small = bootstrap_mean(rng.normal(0, 1, 20), seed=2)
        large = bootstrap_mean(rng.normal(0, 1, 2000), seed=2)
        assert (large.high - large.low) < (small.high - small.low)

    def test_single_value_degenerate(self):
        interval = bootstrap_mean([4.2])
        assert interval.low == interval.high == interval.mean == 4.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            bootstrap_mean([])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_mean([1.0, 2.0], confidence=1.5)

    def test_deterministic_given_seed(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_mean(data, seed=7) == bootstrap_mean(data, seed=7)

    def test_str_format(self):
        text = str(bootstrap_mean([1.0, 2.0, 3.0]))
        assert "[" in text and "]" in text

    @settings(max_examples=25)
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=40))
    def test_interval_ordering(self, values):
        interval = bootstrap_mean(values, resamples=200)
        assert interval.low <= interval.high
        assert min(values) - 1e-9 <= interval.low
        assert interval.high <= max(values) + 1e-9


class TestBootstrapDifference:
    def test_clear_difference_excludes_zero(self):
        rng = np.random.default_rng(3)
        base = rng.normal(0, 0.1, 80)
        shifted = base + 1.0 + rng.normal(0, 0.05, 80)
        interval = bootstrap_difference(shifted, base)
        assert interval.low > 0.0

    def test_no_difference_includes_zero(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0, 1, 80)
        b = a + rng.normal(0, 1, 80)
        interval = bootstrap_difference(a, b)
        assert interval.contains(0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            bootstrap_difference([1.0], [1.0, 2.0])
