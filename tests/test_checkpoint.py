"""Tests for atomic result persistence and checkpoint/resume journals."""

import json
import os

import pytest

from repro.eval.runner import EvaluationSettings, run_selector
from repro.experiments.persist import (
    ResultJournal,
    active_journal,
    checkpointing,
    load_results,
    result_from_record,
    result_record,
    run_key,
    save_results,
    _jsonable,
)
from repro.resilience.faults import FaultInjectingSelector, InjectedFault


@pytest.fixture()
def greedy_result(instance, config):
    from repro.core.selection import make_selector

    return make_selector("CompaReSetS_Greedy").select(instance, config)


class TestResultRoundTrip:
    def test_record_round_trips_selection_result(self, greedy_result):
        record = result_record(greedy_result)
        # The record must survive JSON serialisation (journal lines).
        restored = result_from_record(json.loads(json.dumps(record)))
        assert restored == greedy_result

    def test_degraded_flag_round_trips(self, greedy_result):
        from dataclasses import replace

        flagged = replace(greedy_result, degraded=True)
        restored = result_from_record(result_record(flagged))
        assert restored.degraded


class TestAtomicSave:
    def test_save_and_load(self, tmp_path, greedy_result):
        path = tmp_path / "out.json"
        settings = EvaluationSettings()
        save_results("demo", {"objective": 1.5}, settings, path)
        envelope = load_results(path)
        assert envelope["experiment"] == "demo"
        assert envelope["results"] == {"objective": 1.5}

    def test_failed_write_preserves_existing_file(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "out.json"
        settings = EvaluationSettings()
        save_results("demo", {"run": 1}, settings, path)
        before = path.read_bytes()

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError, match="disk full"):
            save_results("demo", {"run": 2}, settings, path)
        assert path.read_bytes() == before
        # No orphaned temp files either.
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestRunKey:
    def test_key_components_distinguish_runs(self, instances, config):
        base = run_key("Random", config, 5, instances)
        assert base.startswith("Random|seed=5|")
        assert run_key("Greedy", config, 5, instances) != base
        assert run_key("Random", config, 6, instances) != base
        assert run_key("Random", config, 5, instances[:-1]) != base
        from dataclasses import replace

        other_config = replace(config, max_reviews=config.max_reviews + 1)
        assert run_key("Random", other_config, 5, instances) != base

    def test_key_is_stable(self, instances, config):
        assert run_key("Random", config, 5, instances) == run_key(
            "Random", config, 5, instances
        )


class TestResultJournal:
    def test_append_then_reload(self, tmp_path, greedy_result):
        path = tmp_path / "journal.jsonl"
        with ResultJournal(path) as journal:
            journal.append("run-a", 0, greedy_result, 0.25)
            journal.append("run-a", 1, greedy_result, 0.5)
        reloaded = ResultJournal(path)
        assert len(reloaded) == 2
        assert ("run-a", 0) in reloaded
        assert ("run-a", 2) not in reloaded
        assert reloaded.entries_for("run-a") == 2
        entry = reloaded.get("run-a", 1)
        assert entry.result == greedy_result
        assert entry.seconds == 0.5
        assert reloaded.get("run-b", 0) is None

    def test_rng_state_round_trips(self, tmp_path, greedy_result):
        import numpy as np

        rng = np.random.default_rng(3)
        rng.random(7)
        state = rng.bit_generator.state
        path = tmp_path / "journal.jsonl"
        with ResultJournal(path) as journal:
            journal.append("run-a", 0, greedy_result, 0.1, rng_state=state)
        entry = ResultJournal(path).get("run-a", 0)
        replayed = np.random.default_rng(0)
        replayed.bit_generator.state = entry.rng_state
        assert float(replayed.random()) == float(rng.random())

    def test_torn_final_line_is_tolerated(self, tmp_path, greedy_result):
        path = tmp_path / "journal.jsonl"
        with ResultJournal(path) as journal:
            journal.append("run-a", 0, greedy_result, 0.1)
            journal.append("run-a", 1, greedy_result, 0.1)
        # Simulate a crash mid-append: chop the last line in half.
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        survivor = ResultJournal(path)
        assert len(survivor) == 1
        assert ("run-a", 0) in survivor

    def test_corrupt_interior_line_raises(self, tmp_path, greedy_result):
        path = tmp_path / "journal.jsonl"
        with ResultJournal(path) as journal:
            journal.append("run-a", 0, greedy_result, 0.1)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, '{"kind": "entry", truncated')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line"):
            ResultJournal(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "header", "version": 99}\n')
        with pytest.raises(ValueError, match="unsupported journal version"):
            ResultJournal(path)

    def test_append_resumes_without_duplicate_header(
        self, tmp_path, greedy_result
    ):
        path = tmp_path / "journal.jsonl"
        with ResultJournal(path) as journal:
            journal.append("run-a", 0, greedy_result, 0.1)
        with ResultJournal(path) as journal:
            journal.append("run-a", 1, greedy_result, 0.1)
        kinds = [
            json.loads(line)["kind"]
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert kinds == ["header", "entry", "entry"]


class TestCheckpointResume:
    def test_active_journal_scoping(self, tmp_path):
        assert active_journal() is None
        with checkpointing(tmp_path / "j.jsonl") as journal:
            assert active_journal() is journal
        assert active_journal() is None

    def test_interrupted_run_resumes_byte_identical(
        self, tmp_path, instances, config
    ):
        """The ISSUE-1 acceptance check: kill a run partway, resume from
        the journal, and the final results match an uninterrupted run
        exactly — including the RNG stream of a stochastic selector."""
        subset = instances[:5]
        baseline = run_selector("Random", subset, config, seed=5)

        # First attempt dies on instance 3 after journaling 0..2.
        faulty = FaultInjectingSelector(
            inner="Random",
            flaky_ids=(subset[3].target.product_id,),
            flaky_attempts=1,
            scratch_dir=str(tmp_path / "scratch"),
        )
        faulty.name = "Random"  # same run identity as the clean selector
        journal_path = tmp_path / "journal.jsonl"
        with checkpointing(journal_path):
            with pytest.raises(InjectedFault):
                run_selector(faulty, subset, config, seed=5)

        with checkpointing(journal_path) as journal:
            assert len(journal) == 3  # instances 0..2 survived the crash
            resumed = run_selector("Random", subset, config, seed=5)

        # Byte-identical selections (timings are wall-clock and excluded).
        assert json.dumps(_jsonable(resumed.results), sort_keys=True) == json.dumps(
            _jsonable(baseline.results), sort_keys=True
        )
        assert resumed.algorithm == baseline.algorithm

    def test_replay_does_not_recompute(self, tmp_path, instances, config):
        subset = instances[:4]
        journal_path = tmp_path / "journal.jsonl"
        with checkpointing(journal_path):
            first = run_selector("CompaReSetS_Greedy", subset, config, seed=1)

        # A selector that crashes on *every* instance proves that a fully
        # journaled run never calls select() again.
        crasher = FaultInjectingSelector(
            inner="CompaReSetS_Greedy",
            crash_ids=tuple(i.target.product_id for i in subset),
        )
        crasher.name = "CompaReSetS_Greedy"
        with checkpointing(journal_path):
            replayed = run_selector(crasher, subset, config, seed=1)
        assert replayed.results == first.results
        assert replayed.seconds_per_instance == first.seconds_per_instance

    def test_different_seed_does_not_reuse_journal(
        self, tmp_path, instances, config
    ):
        subset = instances[:3]
        journal_path = tmp_path / "journal.jsonl"
        with checkpointing(journal_path) as journal:
            run_selector("Random", subset, config, seed=1)
            assert len(journal) == 3
            run_selector("Random", subset, config, seed=2)
            assert len(journal) == 6  # separate run key, separate entries

    def test_explicit_journal_argument(self, tmp_path, instances, config):
        subset = instances[:3]
        with ResultJournal(tmp_path / "j.jsonl") as journal:
            run_selector("CompaReSetS_Greedy", subset, config, seed=0, journal=journal)
            assert len(journal) == 3
