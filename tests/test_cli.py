"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def corpus_file(tmp_path):
    path = tmp_path / "toy.jsonl"
    assert main(["generate", "--category", "Toy", "--scale", "0.25",
                 "--seed", "3", "--out", str(path)]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestGenerateAndStats:
    def test_generate_writes_corpus(self, tmp_path, capsys):
        path = tmp_path / "fresh.jsonl"
        assert main(["generate", "--category", "Toy", "--scale", "0.25",
                     "--seed", "3", "--out", str(path)]) == 0
        assert path.exists()
        assert "products" in capsys.readouterr().out

    def test_stats(self, corpus_file, capsys):
        assert main(["stats", str(corpus_file)]) == 0
        out = capsys.readouterr().out
        assert "#Product" in out
        assert "Toy" in out


class TestSelectAndNarrow:
    def test_select_default_target(self, corpus_file, capsys):
        assert main(["select", str(corpus_file), "--m", "2"]) == 0
        out = capsys.readouterr().out
        assert "[TARGET ]" in out

    def test_select_explicit_missing_target(self, corpus_file):
        with pytest.raises(SystemExit, match="not in the corpus"):
            main(["select", str(corpus_file), "--target", "GHOST"])

    def test_narrow_greedy(self, corpus_file, capsys):
        assert main(["narrow", str(corpus_file), "--k", "3", "--m", "2"]) == 0
        out = capsys.readouterr().out
        assert "core list" in out

    def test_narrow_exact(self, corpus_file, capsys):
        assert main([
            "narrow", str(corpus_file), "--k", "3", "--m", "2",
            "--exact", "--time-limit", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "TargetHkS_ILP" in out


class TestExperimentCommand:
    def test_table2(self, capsys):
        assert main([
            "experiment", "table2", "--scale", "0.25", "--instances", "3",
        ]) == 0
        assert "#Product" in capsys.readouterr().out

    def test_fig11(self, capsys):
        assert main([
            "experiment", "fig11", "--scale", "0.25", "--instances", "3",
            "--budgets", "2", "3",
        ]) == 0
        assert "Delta target" in capsys.readouterr().out

    def test_case_study(self, capsys):
        assert main([
            "experiment", "case-study", "--scale", "0.3", "--instances", "6",
        ]) == 0
        assert "This item" in capsys.readouterr().out

    def test_all_accepted_by_parser(self):
        args = build_parser().parse_args(["experiment", "all"])
        assert args.name == "all"

    def test_json_output(self, tmp_path, capsys):
        out_dir = tmp_path / "json"
        assert main([
            "experiment", "table2", "--scale", "0.25", "--instances", "3",
            "--json", str(out_dir),
        ]) == 0
        from repro.experiments.persist import load_results

        envelope = load_results(out_dir / "table2.json")
        assert envelope["experiment"] == "table2"
        assert capsys.readouterr().out  # table still printed


class TestConvertAmazon:
    def test_round_trip(self, tmp_path, capsys):
        import json

        meta = tmp_path / "meta.jsonl"
        meta.write_text(
            json.dumps({"asin": "B1", "title": "X",
                        "related": {"also_bought": ["B2"]}})
            + "\n"
            + json.dumps({"asin": "B2", "title": "Y"})
        )
        reviews = tmp_path / "reviews.jsonl"
        reviews.write_text(
            json.dumps({"reviewerID": "U1", "asin": "B1",
                        "reviewText": "The battery is great.", "overall": 5.0})
            + "\n"
            + json.dumps({"reviewerID": "U2", "asin": "B2",
                          "reviewText": "The battery is poor.", "overall": 2.0})
        )
        out = tmp_path / "corpus.jsonl"
        assert main([
            "convert-amazon", "--reviews", str(reviews),
            "--metadata", str(meta), "--out", str(out), "--no-annotate",
        ]) == 0
        assert out.exists()
        assert "2 products" in capsys.readouterr().out


class TestUsageErrors:
    """Missing or corrupt --corpus must exit 2 with a one-line error."""

    COMMANDS = {
        "select": lambda path: ["select", path, "--m", "2"],
        "narrow": lambda path: ["narrow", path, "--k", "2", "--m", "2"],
        "stats": lambda path: ["stats", path],
        "serve": lambda path: ["serve", "--corpus", path, "--port", "0"],
    }

    @pytest.mark.parametrize("command", sorted(COMMANDS))
    def test_missing_corpus_exits_2(self, command, tmp_path, capsys):
        argv = self.COMMANDS[command](str(tmp_path / "nope.jsonl"))
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: corpus file not found")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    @pytest.mark.parametrize("command", sorted(COMMANDS))
    def test_corrupt_corpus_exits_2(self, command, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "product", "product_id"\nnot json at all\n')
        argv = self.COMMANDS[command](str(path))
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: corpus file")
        assert "corrupt" in err
        assert "Traceback" not in err

    def test_corpus_directory_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "directory" in capsys.readouterr().err

    def test_serve_replicas_above_shards_exits_2(self, tmp_path, capsys):
        """--replicas > --shards is a usage error caught before any
        corpus load or process spawn."""
        code = main([
            "serve", "--corpus", str(tmp_path / "unused.jsonl"),
            "--shards", "3", "--replicas", "4",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "--replicas 4 cannot exceed --shards 3" in out
        assert out.count("\n") == 1

    def test_serve_replicas_below_one_exits_2(self, tmp_path, capsys):
        code = main([
            "serve", "--corpus", str(tmp_path / "unused.jsonl"),
            "--shards", "2", "--replicas", "0",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "--replicas must be >= 1" in out
        assert out.count("\n") == 1
