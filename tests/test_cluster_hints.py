"""HintQueue: bounded, WAL-persisted hinted handoff for dead shards."""

from __future__ import annotations

import pytest

from repro.serve.cluster import HintOverflow, HintQueue


def _records(n: int, start: int = 0) -> list[dict]:
    return [
        {"review_id": f"r{start + i}", "product_id": "P1", "rating": 4}
        for i in range(n)
    ]


class TestHintQueue:
    def test_rejects_bad_bound(self, tmp_path):
        with pytest.raises(ValueError):
            HintQueue(tmp_path, max_per_shard=0)

    def test_add_pending_and_depth(self, tmp_path):
        queue = HintQueue(tmp_path)
        assert queue.pending(0) == []
        assert queue.depth(0) == 0
        seq = queue.add(0, _records(2), delta_seq=7)
        assert seq == 1
        assert queue.depth(0) == 1
        assert queue.total() == 1
        assert queue.shards_with_hints() == (0,)
        [(got_seq, payload)] = queue.pending(0)
        assert got_seq == seq
        assert payload["kind"] == "hint"
        assert payload["delta_seq"] == 7
        assert payload["reviews"] == _records(2)
        queue.close()

    def test_per_shard_isolation(self, tmp_path):
        queue = HintQueue(tmp_path)
        queue.add(0, _records(1), delta_seq=1)
        queue.add(2, _records(1, start=5), delta_seq=2)
        assert queue.shards_with_hints() == (0, 2)
        assert queue.depth(1) == 0
        assert queue.total() == 2
        queue.close()

    def test_mark_delivered_compacts(self, tmp_path):
        queue = HintQueue(tmp_path)
        for delta_seq in (1, 2, 3):
            queue.add(0, _records(1, start=delta_seq), delta_seq=delta_seq)
        assert queue.depth(0) == 3
        queue.mark_delivered(0, 2)
        assert queue.depth(0) == 1
        [(seq, payload)] = queue.pending(0)
        assert payload["delta_seq"] == 3
        queue.mark_delivered(0, seq)
        assert queue.depth(0) == 0
        assert queue.shards_with_hints() == ()
        queue.close()

    def test_overflow_raises_before_writing(self, tmp_path):
        queue = HintQueue(tmp_path, max_per_shard=2)
        queue.add(1, _records(1), delta_seq=1)
        queue.add(1, _records(1, start=1), delta_seq=2)
        with pytest.raises(HintOverflow) as exc_info:
            queue.add(1, _records(1, start=2), delta_seq=3)
        assert exc_info.value.shard == 1
        # The refused hint left no partial record behind.
        assert queue.depth(1) == 2
        assert queue.max_delta_seq() == 2
        queue.close()

    def test_add_all_is_atomic_across_shards(self, tmp_path):
        """An overflow on any shard leaves every queue untouched."""
        queue = HintQueue(tmp_path, max_per_shard=2)
        queue.add(1, _records(1), delta_seq=1)
        queue.add(1, _records(1, start=1), delta_seq=2)
        with pytest.raises(HintOverflow) as exc_info:
            queue.add_all(
                {0: _records(1, start=2), 1: _records(1, start=3)},
                delta_seq=3,
            )
        assert exc_info.value.shard == 1
        # Shard 0's hint was not queued: the drain would otherwise
        # deliver a delta the client was told failed.
        assert queue.depth(0) == 0
        assert queue.depth(1) == 2
        seqs = queue.add_all(
            {0: _records(1, start=4), 2: _records(1, start=5)}, delta_seq=4
        )
        assert set(seqs) == {0, 2}
        assert queue.depth(0) == 1
        assert queue.depth(2) == 1
        queue.close()

    def test_max_delta_seq_survives_records_without_seq(self, tmp_path):
        """A hint record with a null delta_seq must not crash recovery."""
        from repro.serve.wal import WriteAheadLog

        log = WriteAheadLog(tmp_path / "hints-shard-0.wal")
        log.append({"kind": "hint", "reviews": _records(1), "delta_seq": None})
        log.append({"kind": "hint", "reviews": _records(1, start=1)})
        log.close()
        queue = HintQueue(tmp_path)
        assert queue.max_delta_seq() == 0
        queue.close()

    def test_recovery_after_restart(self, tmp_path):
        """A new queue over the same root resumes every undelivered hint."""
        queue = HintQueue(tmp_path)
        queue.add(0, _records(1), delta_seq=4)
        queue.add(3, _records(2, start=9), delta_seq=9)
        queue.close()

        resumed = HintQueue(tmp_path)
        assert resumed.shards_with_hints() == (0, 3)
        assert resumed.depth(3) == 1
        assert resumed.max_delta_seq() == 9
        [(_, payload)] = resumed.pending(3)
        assert payload["reviews"] == _records(2, start=9)
        resumed.close()

    def test_drop_shard_removes_queue_and_file(self, tmp_path):
        queue = HintQueue(tmp_path)
        queue.add(5, _records(1), delta_seq=1)
        path = tmp_path / "hints-shard-5.wal"
        assert path.exists()
        assert queue.drop_shard(5) == 1
        assert not path.exists()
        assert queue.depth(5) == 0
        assert queue.drop_shard(5) == 0  # idempotent
        queue.close()
