"""Framing-protocol round-trips and failure modes (sync + asyncio)."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.serve.cluster import (
    FrameError,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame_async,
    recv_frame,
    send_frame,
    write_frame_async,
)
from repro.serve.cluster.proto import decode_payload


def _pair() -> tuple[socket.socket, socket.socket]:
    return socket.socketpair()


class TestSyncFraming:
    def test_round_trip(self):
        a, b = _pair()
        payload = {"op": "select", "body": {"target": "T", "mu": 0.1}}
        send_frame(a, payload)
        assert recv_frame(b) == payload
        a.close(), b.close()

    def test_multiple_frames_in_sequence(self):
        a, b = _pair()
        for i in range(5):
            send_frame(a, {"seq": i})
        assert [recv_frame(b)["seq"] for _ in range(5)] == list(range(5))
        a.close(), b.close()

    def test_clean_eof_returns_none(self):
        a, b = _pair()
        a.close()
        assert recv_frame(b) is None
        b.close()

    def test_torn_frame_raises(self):
        a, b = _pair()
        frame = encode_frame({"op": "ping"})
        a.sendall(frame[: len(frame) - 3])  # header + partial body
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    def test_eof_after_length_prefix_raises(self):
        a, b = _pair()
        a.sendall(struct.pack(">I", 10))
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    def test_oversized_length_raises(self):
        a, b = _pair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError):
            recv_frame(b)
        a.close(), b.close()

    def test_non_json_body_raises(self):
        a, b = _pair()
        body = b"not json!"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError):
            recv_frame(b)
        a.close(), b.close()

    def test_non_object_body_raises(self):
        with pytest.raises(FrameError):
            decode_payload(b"[1,2,3]")

    def test_unicode_payload(self):
        a, b = _pair()
        payload = {"text": "sehr gut ✓ über"}
        send_frame(a, payload)
        assert recv_frame(b) == payload
        a.close(), b.close()


class TestAsyncFraming:
    def test_async_round_trip_against_sync_peer(self):
        """The gateway (async) and worker (sync) speak the same bytes."""
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]
        seen: dict = {}

        def peer() -> None:
            conn, _ = server.accept()
            seen["request"] = recv_frame(conn)
            send_frame(conn, {"status": 200, "payload": {"ok": True}})
            conn.close()

        thread = threading.Thread(target=peer, daemon=True)
        thread.start()

        async def client() -> dict:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await write_frame_async(writer, {"op": "ping"})
            reply = await read_frame_async(reader)
            writer.close()
            return reply

        reply = asyncio.run(client())
        thread.join(5.0)
        server.close()
        assert seen["request"] == {"op": "ping"}
        assert reply == {"status": 200, "payload": {"ok": True}}

    def test_async_eof_mid_frame_raises(self):
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def peer() -> None:
            conn, _ = server.accept()
            conn.sendall(struct.pack(">I", 100) + b"partial")
            conn.close()

        thread = threading.Thread(target=peer, daemon=True)
        thread.start()

        async def client() -> None:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                with pytest.raises(FrameError):
                    await read_frame_async(reader)
            finally:
                writer.close()

        asyncio.run(client())
        thread.join(5.0)
        server.close()


def test_encode_frame_is_canonical_json():
    frame = encode_frame({"b": 1, "a": 2})
    assert frame[4:] == b'{"a":2,"b":1}'
    assert struct.unpack(">I", frame[:4])[0] == len(frame) - 4
