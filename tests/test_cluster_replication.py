"""End-to-end replication tests: read failover, hinted handoff, live resize.

The acceptance bar raises the cluster's from transparency to
availability: with ``replicas=2`` a SIGKILLed primary must be invisible
to readers (its keys answer 200 from a replica, byte-identically,
with failover provenance), writes during the outage must ack after
queueing durable hints that drain on recovery, and a live
``resize()`` must keep every in-flight request inside
{200, 429, 503 + Retry-After} while never answering from a wrong
shard.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.data.instances import build_instance
from repro.data.io import save_corpus
from repro.data.synthetic import generate_corpus
from repro.serve.cluster import ClusterConfig, ClusterError, ServingCluster
from repro.serve.engine import SelectionEngine
from repro.serve.store import ItemStore
from repro.serve.supervisor import RestartPolicy

SHARDS = 3
REPLICAS = 2


def _post(base: str, path: str, body: dict, timeout: float = 120.0):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base: str, path: str, timeout: float = 60.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=11)


@pytest.fixture(scope="module")
def corpus_path(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("replication") / "corpus.jsonl"
    save_corpus(corpus, path)
    return path


@pytest.fixture(scope="module")
def viable_targets(corpus):
    return [
        p.product_id
        for p in corpus.products
        if build_instance(corpus, p.product_id, 10, min_reviews=3)
    ]


@pytest.fixture(scope="module")
def reference(corpus):
    """In-process engine over the full corpus: the byte-identity oracle."""
    engine = SelectionEngine(ItemStore(corpus), workers=2)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def cluster(corpus_path, tmp_path_factory):
    config = ClusterConfig(
        corpus_path=corpus_path,
        shards=SHARDS,
        replicas=REPLICAS,
        state_dir=tmp_path_factory.mktemp("replication-state"),
        engine_options={"workers": 2, "snapshot_every": 2},
        restart_policy=RestartPolicy(base_delay=0.2, max_restarts=10),
        hint_drain_interval=0.1,
        resize_grace=0.2,
    )
    with ServingCluster(config) as running:
        yield running


def _select_result(base: str, target: str) -> tuple[int, dict]:
    status, body = _post(base, "/v1/select", {"target": target})
    return status, body


class TestConfigValidation:
    def test_replicas_must_fit_the_shard_count(self, corpus_path, tmp_path):
        for replicas in (0, SHARDS + 1):
            config = ClusterConfig(
                corpus_path=corpus_path,
                shards=SHARDS,
                replicas=replicas,
                state_dir=tmp_path / f"bad-{replicas}",
            )
            with pytest.raises(ClusterError):
                ServingCluster(config)


class TestReplicatedTopology:
    def test_plan_places_every_product_on_two_shards(self, cluster, corpus):
        plan = cluster.plan
        assert plan.replicas == REPLICAS
        for product in corpus.products:
            prefs = plan.preference(product.product_id)
            assert len(prefs) == REPLICAS
            assert len(set(prefs)) == REPLICAS

    def test_healthz_reports_replication(self, cluster):
        status, raw = _get(cluster.base_url, "/healthz")
        payload = json.loads(raw)
        assert status == 200
        assert payload["replicas"] == REPLICAS
        assert payload["generation"] == 1
        assert payload["hints"] == {}

    def test_replica_reads_match_reference(
        self, cluster, reference, viable_targets
    ):
        for target in viable_targets[:4]:
            status, body = _select_result(cluster.base_url, target)
            assert status == 200
            direct = reference.select(target=target).as_dict()["result"]
            assert json.dumps(body["result"], sort_keys=True) == json.dumps(
                direct, sort_keys=True
            ), target


class TestReadFailover:
    """SIGKILL a primary: its keys keep answering 200, from a replica."""

    def test_primary_outage_is_invisible_to_readers(
        self, cluster, viable_targets
    ):
        plan = cluster.plan
        victim = plan.preference(viable_targets[0])[0]
        victim_keys = [
            t for t in viable_targets if plan.preference(t)[0] == victim
        ][:3]
        assert victim_keys, "toy corpus must give the victim a target"
        baseline = {}
        for target in victim_keys:
            status, body = _select_result(cluster.base_url, target)
            assert status == 200
            baseline[target] = json.dumps(body["result"], sort_keys=True)

        restarts_before = cluster.restarts()[victim]
        cluster.kill_shard(victim)
        saw_failover = False
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            for target in victim_keys:
                status, body = _select_result(cluster.base_url, target)
                # The replication guarantee: never 503 for a single
                # failure at replicas=2, and never a different answer.
                assert status == 200, (target, body)
                assert (
                    json.dumps(body["result"], sort_keys=True)
                    == baseline[target]
                )
                provenance = body.get("provenance", {})
                if provenance.get("failover"):
                    saw_failover = True
                    served_by = provenance["served_by"]
                    assert served_by != f"shard-{victim}"
                    assert served_by in {
                        f"shard-{s}" for s in plan.preference(target)
                    }
            if saw_failover and cluster.restarts()[victim] > restarts_before:
                break
            time.sleep(0.1)
        assert saw_failover, "no request observed the outage window"

        # Metrics recorded the failovers.
        status, raw = _get(cluster.base_url, "/metrics?format=prometheus")
        assert status == 200
        assert "repro_failover_total" in raw.decode()

        # And the primary comes back.
        deadline = time.monotonic() + 30.0
        while cluster.restarts()[victim] <= restarts_before:
            assert time.monotonic() < deadline
            time.sleep(0.2)


class TestHintedHandoff:
    def test_ingest_during_outage_hints_then_drains(
        self, cluster, viable_targets
    ):
        plan = cluster.plan
        target = viable_targets[1]
        victim = plan.preference(target)[0]
        record = {
            "review_id": "HINTED-E2E-1",
            "product_id": target,
            "rating": 4.0,
            "text": "survives a primary crash",
            "mentions": [{"aspect": "durability", "sentiment": 1}],
        }
        restarts_before = cluster.restarts()[victim]
        cluster.kill_shard(victim)
        # Write while the primary is down: the live replica acks, the
        # dead shard's copy is queued as a durable hint.
        deadline = time.monotonic() + 30.0
        status, ack = None, None
        while time.monotonic() < deadline:
            status, ack = _post(
                cluster.base_url, "/v1/ingest", {"reviews": [record]}
            )
            if status == 200:
                break
            assert status in (429, 503), ack
            time.sleep(0.1)
        assert status == 200, ack
        assert ack["added"] == 1
        assert "delta_seq" in ack

        # Recovery: the supervisor restarts the worker and the drain
        # loop replays the hint; the queue must empty.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if (
                cluster.restarts()[victim] > restarts_before
                and not cluster.hint_depths()
            ):
                break
            time.sleep(0.2)
        assert not cluster.hint_depths(), cluster.hint_depths()

        # Convergence: every reachable replica holds the review and the
        # divergence probe finds nothing.
        deadline = time.monotonic() + 30.0
        report = None
        while time.monotonic() < deadline:
            report = cluster.check_replicas(target)
            views = [v for v in report["replicas"].values() if v is not None]
            if len(views) == REPLICAS and not report["diverged"]:
                break
            time.sleep(0.2)
        assert report is not None and not report["diverged"], report
        for shard, review_ids in report["replicas"].items():
            assert review_ids is not None, (shard, report)
            assert "HINTED-E2E-1" in review_ids, (shard, report)

    def test_duplicate_after_drain_is_409(self, cluster, viable_targets):
        record = {
            "review_id": "HINTED-E2E-1",
            "product_id": viable_targets[1],
            "rating": 4.0,
            "text": "survives a primary crash",
            "mentions": [{"aspect": "durability", "sentiment": 1}],
        }
        status, body = _post(
            cluster.base_url, "/v1/ingest", {"reviews": [record]}
        )
        assert status == 409, body


class TestLiveResize:
    """Grow 3 -> 4 under read traffic, then shrink back to 3."""

    def _hammer(self, cluster, targets, stop, statuses):
        while not stop.is_set():
            for target in targets:
                status, body = _select_result(cluster.base_url, target)
                statuses.append((status, body))

    def test_grow_under_traffic(self, cluster, reference, viable_targets):
        targets = viable_targets[2:6] or viable_targets[:2]
        stop = threading.Event()
        statuses: list[tuple[int, dict]] = []
        hammer = threading.Thread(
            target=self._hammer,
            args=(cluster, targets, stop, statuses),
            daemon=True,
        )
        hammer.start()
        try:
            report = cluster.resize(SHARDS + 1)
        finally:
            stop.set()
            hammer.join(timeout=30)
        assert report["generation"] == 2
        assert cluster.plan.shards == SHARDS + 1
        assert cluster.ring.describe()["shards"] == SHARDS + 1
        # Every concurrent read stayed inside the allowed statuses and
        # every 503 carried Retry-After semantics (a retryable body).
        assert statuses, "hammer thread never completed a request"
        for status, body in statuses:
            assert status in (200, 429, 503), (status, body)
            if status == 503:
                assert "retry_after" in body, body

        # Post-resize answers are still byte-identical to the oracle
        # for targets untouched by the earlier ingest.
        untouched = [t for t in targets if t != viable_targets[1]]
        for target in untouched:
            status, body = _select_result(cluster.base_url, target)
            assert status == 200, body
            direct = reference.select(target=target).as_dict()["result"]
            assert json.dumps(body["result"], sort_keys=True) == json.dumps(
                direct, sort_keys=True
            ), target

    def test_shrink_back(self, cluster, reference, viable_targets):
        report = cluster.resize(SHARDS)
        assert report["generation"] == 3
        assert sorted(report["dropped"]) == [SHARDS]
        assert cluster.plan.shards == SHARDS
        target = viable_targets[0]
        status, body = _select_result(cluster.base_url, target)
        assert status == 200, body
        direct = reference.select(target=target).as_dict()["result"]
        assert json.dumps(body["result"], sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )
        # The hinted review from the handoff test survived both resizes
        # on every current replica.
        report = cluster.check_replicas(viable_targets[1])
        assert not report["diverged"], report
        for review_ids in report["replicas"].values():
            assert review_ids is None or "HINTED-E2E-1" in review_ids

    def test_rejects_bad_sizes(self, cluster):
        with pytest.raises(ClusterError):
            cluster.resize(0)
        with pytest.raises(ClusterError):
            cluster.resize(REPLICAS - 1)


class TestConcurrentIngestOrdering:
    """Concurrent same-product deltas land in one order on every replica.

    Review order is order-sensitive for instance construction, so
    replicas applying two deltas in opposite orders diverge byte-wise
    with no data lost; the gateway's per-product serialisation makes
    the order identical everywhere.  Runs after the oracle-compared
    resize tests: the extra reviews shift selections for any target
    whose comparison closure includes this product.
    """

    def test_replicas_agree_after_concurrent_ingest(
        self, cluster, viable_targets
    ):
        target = viable_targets[1]
        results: dict[int, tuple[int, dict]] = {}

        def _ingest(index: int) -> None:
            record = {
                "review_id": f"CONC-{index}",
                "product_id": target,
                "rating": 3.0,
                "text": f"concurrent write {index}",
                "mentions": [{"aspect": "value", "sentiment": 1}],
            }
            results[index] = _post(
                cluster.base_url, "/v1/ingest", {"reviews": [record]}
            )

        threads = [
            threading.Thread(target=_ingest, args=(index,))
            for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        for status, body in results.values():
            assert status in (200, 429, 503), body
        acked = [i for i, (status, _) in results.items() if status == 200]
        assert acked, "no concurrent ingest was acknowledged"

        report = cluster.check_replicas(target)
        assert not report["diverged"], report
        views = [v for v in report["replicas"].values() if v is not None]
        assert len(views) == REPLICAS, report
        for index in acked:
            for view in views:
                assert f"CONC-{index}" in view, (index, report)


class TestResizeUnderIngestTraffic:
    """Grow under an ingest hammer: every acked delta survives the flip.

    The resize's stall drains in-flight ingests before the catch-up
    replay, so a delta acknowledged during the handover window is in
    the journal the fresh workers are built from — an ack may never be
    followed by the review missing from the new primary.
    """

    def test_acked_ingests_survive_grow(self, cluster, viable_targets):
        target = viable_targets[1]
        stop = threading.Event()
        acked: list[str] = []
        statuses: list[int] = []

        def _hammer() -> None:
            index = 0
            while not stop.is_set():
                review_id = f"RESIZE-ING-{index}"
                status, _body = _post(
                    cluster.base_url,
                    "/v1/ingest",
                    {
                        "reviews": [
                            {
                                "review_id": review_id,
                                "product_id": target,
                                "rating": 4.0,
                                "text": f"written mid-resize {index}",
                                "mentions": [
                                    {"aspect": "value", "sentiment": 1}
                                ],
                            }
                        ]
                    },
                )
                statuses.append(status)
                if status == 200:
                    acked.append(review_id)
                index += 1

        hammer = threading.Thread(target=_hammer, daemon=True)
        hammer.start()
        try:
            cluster.resize(SHARDS + 1)
        finally:
            stop.set()
            hammer.join(timeout=120)
        assert cluster.plan.shards == SHARDS + 1
        assert set(statuses) <= {200, 429, 503}, sorted(set(statuses))
        assert acked, "hammer never landed an acknowledged ingest"

        # Every acknowledged delta must be present, in one agreed order,
        # on every replica of the *new* topology — including any worker
        # the resize built from the journal.
        deadline = time.monotonic() + 30.0
        report = None
        while time.monotonic() < deadline:
            report = cluster.check_replicas(target)
            views = [
                view for view in report["replicas"].values()
                if view is not None
            ]
            if len(views) == REPLICAS and not report["diverged"]:
                break
            time.sleep(0.2)
        assert report is not None and not report["diverged"], report
        for view in report["replicas"].values():
            assert view is not None, report
            for review_id in acked:
                assert review_id in view, (review_id, report)
