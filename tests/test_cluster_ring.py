"""Hash ring + corpus partitioning invariants for the serving cluster."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import generate_corpus
from repro.serve.cluster import HashRing, partition_corpus


def _keys(n: int) -> list[str]:
    return [f"ITEM{i:06d}" for i in range(n)]


class TestHashRing:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)

    def test_deterministic_placement(self):
        """Same (shards, vnodes, seed) => same routing, across instances."""
        a = HashRing(5, vnodes=32, seed=13)
        b = HashRing(5, vnodes=32, seed=13)
        keys = _keys(500)
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_seed_changes_placement(self):
        a = HashRing(5, seed=1)
        b = HashRing(5, seed=2)
        keys = _keys(500)
        assert [a.route(k) for k in keys] != [b.route(k) for k in keys]

    def test_every_shard_gets_keys(self):
        ring = HashRing(4, vnodes=64)
        owners = {ring.route(k) for k in _keys(2000)}
        assert owners == {0, 1, 2, 3}

    def test_resize_moves_about_one_over_n_keys(self):
        """Growing N -> N+1 moves ~1/(N+1) of keys, and only to the new shard."""
        keys = _keys(4000)
        for n in (2, 4, 8):
            before = HashRing(n, vnodes=128)
            after = before.resized(n + 1)
            moved = [k for k in keys if before.route(k) != after.route(k)]
            # Consistent hashing's signature property: adding a shard only
            # adds ring points, so every moved key moves TO the new shard.
            assert all(after.route(k) == n for k in moved)
            expected = 1.0 / (n + 1)
            fraction = len(moved) / len(keys)
            assert fraction <= expected * 1.6, (n, fraction)
            assert fraction >= expected * 0.4, (n, fraction)

    def test_resized_preserves_geometry(self):
        ring = HashRing(3, vnodes=16, seed=99)
        grown = ring.resized(4)
        assert (grown.vnodes, grown.seed) == (16, 99)

    @settings(max_examples=200, deadline=None)
    @given(
        key=st.text(min_size=0, max_size=40),
        shards=st.integers(min_value=1, max_value=12),
    )
    def test_property_every_key_routes_to_exactly_one_shard(self, key, shards):
        ring = HashRing(shards, vnodes=8)
        owner = ring.route(key)
        assert 0 <= owner < shards
        assert ring.route(key) == owner  # stable on repeat lookups

    def test_describe(self):
        assert HashRing(2, vnodes=8, seed=5).describe() == {
            "shards": 2, "vnodes": 8, "seed": 5,
        }


class TestPreferenceList:
    def test_rejects_bad_sizes(self):
        ring = HashRing(3)
        for n in (0, 4, -1):
            with pytest.raises(ValueError):
                ring.preference_list("ITEM000001", n)

    def test_r1_equals_route_exactly(self):
        ring = HashRing(5, vnodes=32, seed=13)
        for key in _keys(500):
            assert ring.preference_list(key, 1) == (ring.route(key),)

    def test_growth_never_pulls_an_old_shard_in(self):
        """Growing the ring can push a shard out of a key's preference
        list but never pull an existing shard in — the property that
        lets a live resize stream data only to the new shards."""
        for n in (2, 3, 5):
            before = HashRing(n, vnodes=64)
            after = before.resized(n + 1)
            r = min(2, n)
            for key in _keys(800):
                old = before.preference_list(key, r)
                new = after.preference_list(key, r)
                gained = set(new) - set(old)
                assert gained <= {n}, (key, old, new)

    @settings(max_examples=200, deadline=None)
    @given(
        key=st.text(min_size=0, max_size=40),
        shards=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
        data=st.data(),
    )
    def test_property_distinct_deterministic_and_route_consistent(
        self, key, shards, seed, data
    ):
        """The satellite property: R entries are distinct, the list is a
        pure function of (shards, vnodes, seed, key, R), and R=1 equals
        route() exactly."""
        r = data.draw(st.integers(min_value=1, max_value=shards))
        ring = HashRing(shards, vnodes=8, seed=seed)
        prefs = ring.preference_list(key, r)
        assert len(prefs) == r
        assert len(set(prefs)) == r  # all distinct shards
        assert all(0 <= shard < shards for shard in prefs)
        assert prefs[0] == ring.route(key)
        # Deterministic across instances with the same parameters.
        again = HashRing(shards, vnodes=8, seed=seed).preference_list(key, r)
        assert again == prefs
        # Prefix-stable: a shorter list is a prefix of a longer one.
        assert ring.preference_list(key, 1) == prefs[:1]


class TestPartitionCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus("Toy", scale=0.3, seed=11)

    def test_owned_sets_partition_the_catalogue(self, corpus):
        ring = HashRing(4)
        plan = partition_corpus(corpus, ring)
        all_owned = [pid for owned in plan.owned for pid in owned]
        assert sorted(all_owned) == sorted(p.product_id for p in corpus.products)
        assert len(all_owned) == len(set(all_owned))  # exactly one owner

    def test_owner_matches_ring(self, corpus):
        ring = HashRing(4)
        plan = partition_corpus(corpus, ring)
        for product in corpus.products:
            assert plan.owner(product.product_id) == ring.route(product.product_id)

    def test_shard_holds_one_hop_closure(self, corpus):
        """A shard's corpus has every in-corpus candidate of its targets."""
        ring = HashRing(4)
        plan = partition_corpus(corpus, ring)
        for shard, owned in enumerate(plan.owned):
            held = {p.product_id for p in plan.corpora[shard].products}
            for pid in owned:
                assert pid in held
                for candidate in corpus.product(pid).also_bought:
                    if corpus.has_product(candidate):
                        assert candidate in held, (shard, pid, candidate)

    def test_placement_lists_every_holder(self, corpus):
        ring = HashRing(4)
        plan = partition_corpus(corpus, ring)
        for shard, sub in enumerate(plan.corpora):
            for product in sub.products:
                assert shard in plan.holders(product.product_id)
        for pid, holders in plan.placement.items():
            assert holders[0] == ring.route(pid)
            assert len(holders) == len(set(holders))

    def test_sub_corpora_preserve_full_corpus_order(self, corpus):
        ring = HashRing(3)
        plan = partition_corpus(corpus, ring)
        order = {p.product_id: i for i, p in enumerate(corpus.products)}
        for sub in plan.corpora:
            indices = [order[p.product_id] for p in sub.products]
            assert indices == sorted(indices)
            held = {p.product_id for p in sub.products}
            expected_reviews = [
                r.review_id for r in corpus.reviews if r.product_id in held
            ]
            assert [r.review_id for r in sub.reviews] == expected_reviews

    def test_single_shard_partition_is_the_corpus(self, corpus):
        plan = partition_corpus(corpus, HashRing(1))
        assert plan.corpora[0].products == corpus.products
        assert plan.corpora[0].reviews == corpus.reviews
        assert plan.corpora[0].name == corpus.name

    def test_holders_raises_for_unknown_product(self, corpus):
        plan = partition_corpus(corpus, HashRing(2))
        with pytest.raises(KeyError):
            plan.holders("NOPE")


class TestReplicatedPartition:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus("Toy", scale=0.3, seed=11)

    def test_rejects_bad_replica_counts(self, corpus):
        ring = HashRing(3)
        for replicas in (0, 4):
            with pytest.raises(ValueError):
                partition_corpus(corpus, ring, replicas)

    def test_replicas_1_is_byte_identical_to_unreplicated(self, corpus):
        ring = HashRing(4)
        base = partition_corpus(corpus, ring)
        explicit = partition_corpus(corpus, ring, 1)
        assert base.owned == explicit.owned
        assert dict(base.placement) == dict(explicit.placement)
        for a, b in zip(base.corpora, explicit.corpora):
            assert a.products == b.products
            assert a.reviews == b.reviews

    def test_preference_prefix_and_owner_agree_with_ring(self, corpus):
        ring = HashRing(4)
        plan = partition_corpus(corpus, ring, 2)
        assert plan.replicas == 2
        for product in corpus.products:
            pid = product.product_id
            assert plan.preference(pid) == ring.preference_list(pid, 2)
            assert plan.owner(pid) == ring.route(pid)
            # The full holder list starts with the preference list.
            assert plan.holders(pid)[:2] == plan.preference(pid)

    def test_every_replica_holds_the_full_closure(self, corpus):
        """Each preference shard can build byte-identical instances: it
        holds the product plus every in-corpus also-bought candidate."""
        ring = HashRing(4)
        plan = partition_corpus(corpus, ring, 2)
        for product in corpus.products:
            pid = product.product_id
            for shard in plan.preference(pid):
                held = plan.held(shard)
                assert pid in held
                for candidate in product.also_bought:
                    if corpus.has_product(candidate):
                        assert candidate in held, (shard, pid, candidate)

    def test_replica_sub_corpora_agree_on_shared_products(self, corpus):
        """Two shards holding the same product hold the same reviews for
        it, in the same order — the byte-identity substrate."""
        ring = HashRing(3)
        plan = partition_corpus(corpus, ring, 2)
        for pid in plan.placement:
            views = []
            for shard in plan.preference(pid):
                sub = plan.corpora[shard]
                views.append(
                    [r.review_id for r in sub.reviews if r.product_id == pid]
                )
            assert all(view == views[0] for view in views[1:]), pid
