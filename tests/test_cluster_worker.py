"""Shard worker: op handling, error taxonomy, and the framed TCP server."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.data.instances import build_instance
from repro.data.synthetic import generate_corpus
from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.cluster import (
    AppliedDeltaSeqs,
    ShardServer,
    classify_error,
    handle_message,
)
from repro.serve.cluster.proto import recv_frame, send_frame
from repro.serve.engine import EngineDraining, SelectionEngine
from repro.serve.http import BadRequest
from repro.serve.store import ItemStore, UnviableTargetError


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=11)


@pytest.fixture()
def engine(corpus):
    engine = SelectionEngine(ItemStore(corpus), workers=2)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def viable_target(corpus):
    for product in corpus.products:
        if build_instance(corpus, product.product_id, 10, min_reviews=3):
            return product.product_id
    raise AssertionError("toy corpus has no viable target")


class TestHandleMessage:
    def test_select_matches_engine(self, engine, viable_target):
        reply = handle_message(
            engine, {"op": "select", "body": {"target": viable_target}}
        )
        assert reply["status"] == 200
        direct = engine.select(target=viable_target)
        assert reply["payload"]["result"] == direct.as_dict()["result"]

    def test_narrow(self, engine, viable_target):
        reply = handle_message(
            engine, {"op": "narrow", "body": {"target": viable_target, "k": 2}}
        )
        assert reply["status"] == 200
        assert viable_target in reply["payload"]["result"]["core_product_ids"]

    def test_unknown_op(self, engine):
        reply = handle_message(engine, {"op": "explode"})
        assert reply["status"] == 400
        assert "unknown op" in reply["error"]

    def test_missing_body(self, engine):
        reply = handle_message(engine, {"op": "select"})
        assert reply["status"] == 400

    def test_unknown_field_is_400(self, engine):
        reply = handle_message(engine, {"op": "select", "body": {"wat": 1}})
        assert reply["status"] == 400
        assert "unknown fields" in reply["error"]

    def test_unknown_target_is_422(self, engine):
        reply = handle_message(
            engine, {"op": "select", "body": {"target": "NOPE"}}
        )
        assert reply["status"] == 422

    def test_bad_deadline_is_400(self, engine, viable_target):
        reply = handle_message(
            engine,
            {
                "op": "select",
                "body": {"target": viable_target},
                "deadline_ms": -5,
            },
        )
        assert reply["status"] == 400

    def test_expired_deadline_is_503(self, engine, viable_target):
        reply = handle_message(
            engine,
            {
                "op": "select",
                "body": {"target": viable_target, "mu": 0.31459},
                "deadline_ms": 1e-6,
            },
        )
        assert reply["status"] == 503

    def test_ingest_ack_and_duplicate_conflict(self, engine, viable_target):
        record = {
            "review_id": "NEW-W1",
            "product_id": viable_target,
            "rating": 4.0,
            "text": "solid build quality",
            "mentions": [{"aspect": "build", "sentiment": 1}],
        }
        reply = handle_message(engine, {"op": "ingest", "reviews": [record]})
        assert reply["status"] == 200
        assert reply["payload"]["added"] == 1
        dup = handle_message(engine, {"op": "ingest", "reviews": [record]})
        assert dup["status"] == 409

    def test_ingest_requires_review_list(self, engine):
        assert handle_message(engine, {"op": "ingest"})["status"] == 400
        assert (
            handle_message(engine, {"op": "ingest", "reviews": [1]})["status"]
            == 400
        )

    def test_healthz_payload(self, engine):
        reply = handle_message(engine, {"op": "healthz"})
        assert reply["status"] == 200
        assert reply["payload"]["status"] == "ok"
        assert reply["payload"]["corpus_version"] == engine.store.version

    def test_metrics_has_both_renderings(self, engine):
        reply = handle_message(engine, {"op": "metrics"})
        assert reply["status"] == 200
        assert "counters" in reply["payload"]["json"]
        assert "repro_health_state" in reply["payload"]["prometheus"]

    def test_snapshot_without_state_dir_is_409(self, engine):
        assert handle_message(engine, {"op": "snapshot"})["status"] == 409

    def test_ping(self, engine):
        reply = handle_message(engine, {"op": "ping"})
        assert reply == {
            "status": 200,
            "payload": {"version": engine.store.version},
        }

    def test_draining_engine_is_503(self, engine, viable_target):
        engine.drain(0.5)
        reply = handle_message(
            engine, {"op": "select", "body": {"target": viable_target}}
        )
        assert reply["status"] == 503


class TestIngestIdempotence:
    """delta_seq dedup plus the hinted-conflict durable backstop."""

    def _record(self, viable_target, review_id="IDEM-1"):
        return {
            "review_id": review_id,
            "product_id": viable_target,
            "rating": 4.0,
            "text": "sturdy hinge, quiet fan",
            "mentions": [{"aspect": "build", "sentiment": 1}],
        }

    def test_redelivered_delta_seq_is_a_noop_ack(self, engine, viable_target):
        applied = AppliedDeltaSeqs()
        frame = {
            "op": "ingest",
            "reviews": [self._record(viable_target)],
            "delta_seq": 42,
        }
        first = handle_message(engine, frame, applied_seqs=applied)
        assert first["status"] == 200
        assert first["payload"]["added"] == 1
        assert 42 in applied
        again = handle_message(engine, frame, applied_seqs=applied)
        assert again["status"] == 200
        assert again["payload"]["added"] == 0
        assert again["payload"]["idempotent"] is True
        assert again["payload"]["version"] == first["payload"]["version"]

    def test_hinted_conflict_is_noop_but_unhinted_is_409(
        self, engine, viable_target
    ):
        record = self._record(viable_target, review_id="IDEM-2")
        assert (
            handle_message(engine, {"op": "ingest", "reviews": [record]})[
                "status"
            ]
            == 200
        )
        # A fresh AppliedDeltaSeqs models a post-restart worker whose
        # in-memory ledger no longer remembers the seq.
        hinted = handle_message(
            engine,
            {
                "op": "ingest",
                "reviews": [record],
                "hinted": True,
                "delta_seq": 7,
            },
            applied_seqs=AppliedDeltaSeqs(),
        )
        assert hinted["status"] == 200
        assert hinted["payload"]["idempotent"] is True
        plain = handle_message(engine, {"op": "ingest", "reviews": [record]})
        assert plain["status"] == 409

    def test_non_integer_delta_seq_is_400(self, engine, viable_target):
        for bad in (True, "9", 1.5):
            reply = handle_message(
                engine,
                {
                    "op": "ingest",
                    "reviews": [self._record(viable_target)],
                    "delta_seq": bad,
                },
                applied_seqs=AppliedDeltaSeqs(),
            )
            assert reply["status"] == 400, bad
            assert "delta_seq" in reply["error"]

    def test_applied_seqs_bounded_fifo(self):
        applied = AppliedDeltaSeqs(capacity=3)
        for seq in (1, 2, 3, 4):
            applied.add(seq)
        assert 1 not in applied  # evicted
        assert all(seq in applied for seq in (2, 3, 4))
        assert len(applied) == 3
        with pytest.raises(ValueError):
            AppliedDeltaSeqs(capacity=0)


class TestProductState:
    """The gateway's replica-divergence probe op."""

    def test_returns_ordered_review_ids(self, engine, viable_target):
        reply = handle_message(
            engine, {"op": "product_state", "product_id": viable_target}
        )
        assert reply["status"] == 200
        payload = reply["payload"]
        assert payload["product_id"] == viable_target
        expected = [
            r.review_id
            for r in engine.store.corpus.reviews
            if r.product_id == viable_target
        ]
        assert payload["review_ids"] == expected
        assert payload["version"] == engine.store.version

    def test_unknown_product_is_404(self, engine):
        reply = handle_message(
            engine, {"op": "product_state", "product_id": "NOPE"}
        )
        assert reply["status"] == 404

    def test_missing_product_id_is_400(self, engine):
        assert handle_message(engine, {"op": "product_state"})["status"] == 400
        assert (
            handle_message(engine, {"op": "product_state", "product_id": 3})[
                "status"
            ]
            == 400
        )


class TestClassifyError:
    """The mapping mirrors the single-process HTTP layer's taxonomy."""

    def test_statuses(self, engine):
        cases = [
            (BadRequest("nope"), False, 400),
            (TypeError("bad kwarg"), False, 400),
            (UnviableTargetError("thin"), False, 422),
            (Overloaded("full", retry_after=0.25), False, 429),
            (EngineDraining("draining"), False, 503),
            (OSError("disk full"), True, 503),
            (RuntimeError("boom"), False, 500),
        ]
        for exc, ingest, expected in cases:
            reply = classify_error(exc, engine, ingest=ingest)
            assert reply["status"] == expected, exc

    def test_overload_carries_retry_hint_and_reason(self, engine):
        reply = classify_error(
            Overloaded("full", retry_after=0.25, reason="queue_full"),
            engine,
            ingest=False,
        )
        assert reply["retry_after"] == 0.25
        assert reply["extra"] == {"reason": "queue_full"}

    def test_ingest_oserror_is_wal_unavailable(self, engine):
        reply = classify_error(OSError("no space"), engine, ingest=True)
        assert reply["extra"] == {"reason": "wal_unavailable"}
        # A query-path OSError has no WAL involved: backstop 500.
        assert classify_error(OSError("x"), engine, ingest=False)["status"] == 500


class TestShardServer:
    def test_framed_round_trips_over_tcp(self, engine, viable_target):
        server = ShardServer(("127.0.0.1", 0), engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            sock = socket.create_connection(server.server_address, timeout=10)
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["status"] == 200
            send_frame(sock, {"op": "select", "body": {"target": viable_target}})
            reply = recv_frame(sock)
            assert reply["status"] == 200
            assert reply["payload"]["result"]["target"] == viable_target
            # Garbage on the wire drops the connection without killing
            # the server; a fresh connection still works.
            sock.sendall(b"\xff\xff\xff\xff garbage")
            sock.close()
            sock = socket.create_connection(server.server_address, timeout=10)
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["status"] == 200
            sock.close()
        finally:
            server.shutdown()
            server.server_close()

    def test_per_shard_admission_is_injected(self, corpus):
        engine = SelectionEngine(
            ItemStore(corpus),
            workers=2,
            admission=AdmissionController(max_pending=1),
        )
        try:
            assert engine.admission.max_pending == 1
        finally:
            engine.close()
