"""Tests for experiment-run drift comparison."""

import pytest

from repro.eval.runner import EvaluationSettings
from repro.experiments.compare_runs import Drift, compare_runs
from repro.experiments.persist import save_results
from repro.experiments.table2 import run_table2


@pytest.fixture()
def settings():
    return EvaluationSettings(categories=("Toy",), scale=0.25, max_instances=3)


@pytest.fixture()
def baseline(tmp_path, settings):
    results = run_table2(settings)
    path = tmp_path / "before.json"
    save_results("table2", results, settings, path)
    return path, results


class TestCompareRuns:
    def test_identical_runs_no_drift(self, tmp_path, settings, baseline):
        before_path, results = baseline
        after_path = tmp_path / "after.json"
        save_results("table2", results, settings, after_path)
        assert compare_runs(before_path, after_path) == []

    def test_drift_detected(self, tmp_path, settings, baseline):
        import dataclasses

        before_path, results = baseline
        changed = [
            dataclasses.replace(results[0], num_reviews=results[0].num_reviews * 2)
        ] + list(results[1:])
        after_path = tmp_path / "after.json"
        save_results("table2", changed, settings, after_path)
        drifts = compare_runs(before_path, after_path, tolerance=0.05)
        assert len(drifts) == 1
        assert drifts[0].field == "num_reviews"
        assert drifts[0].relative_change == pytest.approx(1.0)

    def test_small_drift_below_tolerance_ignored(self, tmp_path, settings, baseline):
        import dataclasses

        before_path, results = baseline
        changed = [
            dataclasses.replace(
                results[0],
                avg_reviews_per_product=results[0].avg_reviews_per_product * 1.001,
            )
        ] + list(results[1:])
        after_path = tmp_path / "after.json"
        save_results("table2", changed, settings, after_path)
        assert compare_runs(before_path, after_path, tolerance=0.02) == []

    def test_experiment_mismatch(self, tmp_path, settings, baseline):
        before_path, results = baseline
        other_path = tmp_path / "other.json"
        save_results("table5", results, settings, other_path)
        with pytest.raises(ValueError, match="experiment mismatch"):
            compare_runs(before_path, other_path)

    def test_row_universe_mismatch(self, tmp_path, settings, baseline):
        before_path, results = baseline
        after_path = tmp_path / "after.json"
        save_results("table2", results[:-1] if len(results) > 1 else [], settings, after_path)
        with pytest.raises(ValueError, match="row universes"):
            compare_runs(before_path, after_path)


class TestDrift:
    def test_relative_change_and_str(self):
        drift = Drift(row_key=(("dataset", "Toy"),), field="r1", before=2.0, after=3.0)
        assert drift.relative_change == pytest.approx(0.5)
        assert "+50.00%" in str(drift)

    def test_zero_baseline(self):
        drift = Drift(row_key=(), field="x", before=0.0, after=1.0)
        assert drift.relative_change == float("inf")
