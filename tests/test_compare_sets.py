"""Tests for the CompaReSetS selector (Problem 1)."""

import numpy as np
import pytest

from repro.core.compare_sets import CompareSetsSelector, select_for_item
from repro.core.objective import compare_sets_objective, item_objective
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space
from repro.core.vectors import VectorSpace


class TestPaperWorkingExample2:
    """Integer regression reproduces the optimal set of Working Example 2."""

    def test_finds_zero_objective_selection(self, paper_example_instance):
        config = SelectionConfig(max_reviews=3, lam=1.0)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)
        selection = select_for_item(space, reviews, tau, gamma, config)
        objective = item_objective(
            space, [reviews[j] for j in selection], tau, gamma, config.lam
        )
        assert objective == pytest.approx(0.0, abs=1e-9)
        assert len(selection) <= 3

    def test_m4_also_finds_perfect_set(self, paper_example_instance):
        """With m >= 4 the example's alternative optimum {r1..r4} exists."""
        config = SelectionConfig(max_reviews=4, lam=1.0)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)
        selection = select_for_item(space, reviews, tau, gamma, config)
        objective = item_objective(
            space, [reviews[j] for j in selection], tau, gamma, config.lam
        )
        assert objective == pytest.approx(0.0, abs=1e-9)


class TestSelector:
    def test_respects_budget(self, instance, config):
        result = CompareSetsSelector().select(instance, config)
        for selection in result.selections:
            assert len(selection) <= config.max_reviews

    def test_deterministic(self, instance, config):
        a = CompareSetsSelector().select(instance, config)
        b = CompareSetsSelector().select(instance, config)
        assert a.selections == b.selections

    def test_nonempty_selections(self, instance, config):
        result = CompareSetsSelector().select(instance, config)
        for selection, reviews in zip(result.selections, instance.reviews):
            if reviews:
                assert selection

    def test_algorithm_name(self, instance, config):
        assert CompareSetsSelector().select(instance, config).algorithm == "CompaReSetS"

    def test_objective_beats_random_on_average(self, instances, config):
        from repro.core.baselines import RandomSelector

        cs_total = 0.0
        random_total = 0.0
        rng = np.random.default_rng(0)
        for inst in instances:
            cs = CompareSetsSelector().select(inst, config)
            rnd = RandomSelector().select(inst, config, rng=rng)
            cs_total += compare_sets_objective(cs, config)
            random_total += compare_sets_objective(rnd, config)
        assert cs_total < random_total

    def test_lambda_zero_ignores_gamma(self, paper_example_instance):
        """With lam=0 the aspect rows vanish: pure opinion matching (CRS)."""
        config = SelectionConfig(max_reviews=3, lam=0.0)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)
        arbitrary_gamma = np.array([0.1, 0.9, 0.4])
        a = select_for_item(space, reviews, tau, arbitrary_gamma, config)
        b = select_for_item(space, reviews, tau, np.zeros(3), config)
        assert a == b

    def test_empty_review_set_yields_empty_selection(self):
        from repro.data.instances import ComparisonInstance
        from repro.data.models import Product

        instance = ComparisonInstance(
            products=(Product(product_id="p", title="T", category="C"),),
            reviews=((),),
        )
        result = CompareSetsSelector().select(instance, SelectionConfig())
        assert result.selections == ((),)
