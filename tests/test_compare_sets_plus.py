"""Tests for the CompaReSetS+ selector (Problem 2 / Algorithm 1)."""

import numpy as np
import pytest

from repro.core.compare_sets import CompareSetsSelector
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.distance import squared_l2
from repro.core.objective import compare_sets_plus_objective
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space


def unweighted_plus_objective(result, config):
    """Global analogue of the literal acceptance score (lam = mu = 1)."""
    unit = config.with_(lam=1.0, mu=1.0)
    return compare_sets_plus_objective(result, unit)


class TestVariants:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            CompareSetsPlusSelector(variant="bogus")

    def test_default_is_literal(self):
        assert CompareSetsPlusSelector().variant == "literal"

    def test_weighted_never_worse_than_compare_sets_on_eq5(self, instances, config):
        """Each accepted weighted-variant change strictly lowers Eq. 5."""
        selector = CompareSetsPlusSelector(variant="weighted")
        for inst in instances:
            base = CompareSetsSelector().select(inst, config)
            plus = selector.select(inst, config)
            assert compare_sets_plus_objective(plus, config) <= (
                compare_sets_plus_objective(base, config) + 1e-9
            )

    def test_literal_never_worse_on_unweighted_objective(self, instances, config):
        """Literal acceptance monotonically lowers the unweighted sum."""
        selector = CompareSetsPlusSelector(variant="literal")
        for inst in instances:
            base = CompareSetsSelector().select(inst, config)
            plus = selector.select(inst, config)
            assert unweighted_plus_objective(plus, config) <= (
                unweighted_plus_objective(base, config) + 1e-9
            )


class TestBehaviour:
    def test_respects_budget(self, instance, config):
        result = CompareSetsPlusSelector().select(instance, config)
        for selection in result.selections:
            assert len(selection) <= config.max_reviews

    def test_deterministic(self, instance, config):
        selector = CompareSetsPlusSelector()
        assert (
            selector.select(instance, config).selections
            == selector.select(instance, config).selections
        )

    def test_single_item_instance_reduces_to_compare_sets_fit(
        self, paper_example_instance
    ):
        """With one item there is no cross term; the fit stays optimal."""
        config = SelectionConfig(max_reviews=3)
        result = CompareSetsPlusSelector().select(paper_example_instance, config)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)
        chosen = result.selected_reviews(0)
        fit = squared_l2(tau, space.opinion_vector(chosen)) + squared_l2(
            gamma, space.aspect_vector(chosen)
        )
        assert fit == pytest.approx(0.0, abs=1e-9)

    def test_more_sweeps_never_hurt_unweighted_objective(self, instances):
        config1 = SelectionConfig(max_reviews=3, mu=0.01, sweeps=1)
        config3 = SelectionConfig(max_reviews=3, mu=0.01, sweeps=3)
        selector = CompareSetsPlusSelector(variant="literal")
        for inst in instances[:3]:
            one = selector.select(inst, config1)
            three = selector.select(inst, config3)
            assert unweighted_plus_objective(three, config3) <= (
                unweighted_plus_objective(one, config1) + 1e-9
            )

    def test_synchronisation_increases_shared_aspects(self, instances):
        """The cross-item term raises pairwise aspect sharing vs CRS."""
        from repro.core.baselines import CrsSelector

        config = SelectionConfig(max_reviews=3, mu=0.01)

        def mean_pairwise_shared(result):
            shared = []
            sets = [
                {a for r in result.selected_reviews(i) for a in r.aspects}
                for i in range(result.instance.num_items)
            ]
            for i in range(len(sets) - 1):
                for j in range(i + 1, len(sets)):
                    shared.append(len(sets[i] & sets[j]))
            return np.mean(shared) if shared else 0.0

        plus = CompareSetsPlusSelector(variant="literal")
        crs = CrsSelector()
        plus_shared = np.mean(
            [mean_pairwise_shared(plus.select(inst, config)) for inst in instances]
        )
        crs_shared = np.mean(
            [mean_pairwise_shared(crs.select(inst, config)) for inst in instances]
        )
        assert plus_shared >= crs_shared
