"""Tests for the Corpus container and Table-2 statistics."""

import pytest

from repro.data.corpus import Corpus
from repro.data.models import Product
from tests.conftest import make_review


def two_product_corpus() -> Corpus:
    products = [
        Product(product_id="p1", title="A", category="C", also_bought=("p2", "ghost")),
        Product(product_id="p2", title="B", category="C"),
    ]
    reviews = [
        make_review("r1", "p1", [("battery", 1)], reviewer="u1"),
        make_review("r2", "p1", [("screen", -1)], reviewer="u2"),
        make_review("r3", "p2", [("battery", -1)], reviewer="u1"),
    ]
    return Corpus(name="test", products=products, reviews=reviews)


class TestConstruction:
    def test_duplicate_product_rejected(self):
        p = Product(product_id="p1", title="A", category="C")
        with pytest.raises(ValueError, match="duplicate product"):
            Corpus("x", [p, p], [])

    def test_duplicate_review_rejected(self):
        p = Product(product_id="p1", title="A", category="C")
        r = make_review("r1", "p1", [])
        with pytest.raises(ValueError, match="duplicate review"):
            Corpus("x", [p], [r, r])

    def test_orphan_review_rejected(self):
        p = Product(product_id="p1", title="A", category="C")
        r = make_review("r1", "p404", [])
        with pytest.raises(ValueError, match="unknown product"):
            Corpus("x", [p], [r])


class TestAccess:
    def test_reviews_of(self):
        corpus = two_product_corpus()
        assert [r.review_id for r in corpus.reviews_of("p1")] == ["r1", "r2"]
        assert len(corpus.reviews_of("p2")) == 1

    def test_lookup(self):
        corpus = two_product_corpus()
        assert corpus.product("p1").title == "A"
        assert corpus.review("r3").product_id == "p2"
        assert corpus.has_product("p1")
        assert not corpus.has_product("ghost")

    def test_missing_product_raises(self):
        with pytest.raises(KeyError):
            two_product_corpus().product("nope")

    def test_aspect_vocabulary_sorted(self):
        assert two_product_corpus().aspect_vocabulary() == ["battery", "screen"]

    def test_len_and_repr(self):
        corpus = two_product_corpus()
        assert len(corpus) == 2
        assert "products=2" in repr(corpus)


class TestStats:
    def test_counts(self):
        stats = two_product_corpus().stats()
        assert stats.num_products == 2
        assert stats.num_reviews == 3
        assert stats.num_reviewers == 2

    def test_targets_require_in_corpus_comparisons(self):
        # Only p1 has an also_bought entry inside the corpus ("ghost" is not).
        stats = two_product_corpus().stats()
        assert stats.num_target_products == 1
        assert stats.avg_comparison_products == pytest.approx(1.0)

    def test_min_reviews_filter(self):
        stats = two_product_corpus().stats(min_reviews_for_target=3)
        assert stats.num_target_products == 0

    def test_avg_reviews_per_product(self):
        stats = two_product_corpus().stats()
        assert stats.avg_reviews_per_product == pytest.approx(1.5)

    def test_as_rows_order(self):
        rows = two_product_corpus().stats().as_rows()
        assert [label for label, _ in rows] == [
            "#Product",
            "#Reviewer",
            "#Review",
            "#Target Product",
            "Avg. #Comparison Product",
            "Avg. #Review per Product",
        ]
