"""Tests for the related-work coverage selectors (§5.1 baselines)."""

import pytest

from repro.core.coverage_baselines import (
    ComprehensiveSelector,
    PolarityCoverageSelector,
    _greedy_set_cover,
)
from repro.core.problem import SelectionConfig
from repro.core.selection import make_selector
from repro.data.instances import ComparisonInstance
from repro.data.models import Product
from tests.conftest import make_review


def single_item_instance(reviews):
    product = Product(product_id="p1", title="T", category="C")
    return ComparisonInstance(products=(product,), reviews=(tuple(reviews),))


class TestGreedySetCover:
    def test_covers_universe_when_possible(self):
        sets = [{1, 2}, {2, 3}, {4}]
        chosen = _greedy_set_cover({1, 2, 3, 4}, sets, budget=3)
        covered = set().union(*(sets[i] for i in chosen))
        assert covered == {1, 2, 3, 4}

    def test_prefers_large_sets(self):
        sets = [{1}, {1, 2, 3}, {2}]
        assert _greedy_set_cover({1, 2, 3}, sets, budget=1) == (1,)

    def test_budget_respected(self):
        sets = [{i} for i in range(10)]
        chosen = _greedy_set_cover(set(range(10)), sets, budget=4)
        assert len(chosen) == 4

    def test_stops_when_nothing_helps(self):
        sets = [{1}, {1}]
        chosen = _greedy_set_cover({1, 2}, sets, budget=5)
        assert len(chosen) == 1  # element 2 is uncoverable

    def test_empty_universe(self):
        assert _greedy_set_cover(set(), [{1}], budget=3) == ()


class TestComprehensiveSelector:
    def test_covers_all_aspects(self):
        reviews = [
            make_review("r1", "p1", [("battery", 1)]),
            make_review("r2", "p1", [("screen", -1)]),
            make_review("r3", "p1", [("battery", 1), ("screen", 1)]),
        ]
        instance = single_item_instance(reviews)
        result = ComprehensiveSelector().select(instance, SelectionConfig(max_reviews=2))
        covered = set()
        for review in result.selected_reviews(0):
            covered |= review.aspects
        assert covered == {"battery", "screen"}

    def test_minimal_cover_preferred(self):
        reviews = [
            make_review("r1", "p1", [("a", 1)]),
            make_review("r2", "p1", [("b", 1)]),
            make_review("r3", "p1", [("a", 1), ("b", 1)]),
        ]
        instance = single_item_instance(reviews)
        result = ComprehensiveSelector().select(instance, SelectionConfig(max_reviews=3))
        assert result.selections[0] == (2,)

    def test_registered(self):
        assert make_selector("Comprehensive").name == "Comprehensive"

    def test_runs_on_real_instance(self, instance, config):
        result = ComprehensiveSelector().select(instance, config)
        assert all(len(s) <= config.max_reviews for s in result.selections)


class TestPolarityCoverageSelector:
    def test_covers_both_polarities(self):
        reviews = [
            make_review("r1", "p1", [("battery", 1)]),
            make_review("r2", "p1", [("battery", -1)]),
            make_review("r3", "p1", [("battery", 1)]),
        ]
        instance = single_item_instance(reviews)
        result = PolarityCoverageSelector().select(
            instance, SelectionConfig(max_reviews=2)
        )
        signs = {
            review.sentiment_for("battery")
            for review in result.selected_reviews(0)
        }
        assert signs == {1, -1}

    def test_neutral_mentions_not_required(self):
        reviews = [make_review("r1", "p1", [("battery", 0)])]
        instance = single_item_instance(reviews)
        result = PolarityCoverageSelector().select(
            instance, SelectionConfig(max_reviews=2)
        )
        # No signed pairs exist, so nothing needs covering.
        assert result.selections[0] == ()

    def test_registered(self):
        assert make_selector("PolarityCoverage").name == "PolarityCoverage"

    def test_deterministic(self, instance, config):
        selector = PolarityCoverageSelector()
        assert (
            selector.select(instance, config).selections
            == selector.select(instance, config).selections
        )
