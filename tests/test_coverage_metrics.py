"""Tests for the coverage/synchronisation diagnostics."""

import pytest

from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, make_selector
from repro.data.instances import ComparisonInstance
from repro.data.models import Product
from repro.eval.coverage import (
    aspect_coverage,
    cross_item_overlap,
    polarity_balance,
    redundancy,
)
from tests.conftest import make_review


def build_result(review_lists, selections):
    products = tuple(
        Product(product_id=f"p{i}", title=f"P{i}", category="C")
        for i in range(len(review_lists))
    )
    reviews = tuple(
        tuple(
            make_review(f"r{i}_{j}", f"p{i}", mentions)
            for j, mentions in enumerate(mention_lists)
        )
        for i, mention_lists in enumerate(review_lists)
    )
    instance = ComparisonInstance(products=products, reviews=reviews)
    return SelectionResult(instance=instance, selections=selections, algorithm="t")


class TestAspectCoverage:
    def test_full_coverage(self):
        result = build_result(
            [[[("a", 1)], [("b", 1)]]],
            selections=((0, 1),),
        )
        assert aspect_coverage(result) == 1.0

    def test_partial_coverage_weighted_by_counts(self):
        # 'a' occurs 3 times, 'b' once; selecting only 'a' covers 3/4.
        result = build_result(
            [[[("a", 1)], [("a", 1)], [("a", 1)], [("b", 1)]]],
            selections=((0,),),
        )
        assert aspect_coverage(result) == pytest.approx(0.75)

    def test_empty_selection(self):
        result = build_result([[[("a", 1)]]], selections=((),))
        assert aspect_coverage(result) == 0.0


class TestCrossItemOverlap:
    def test_identical_sets(self):
        result = build_result(
            [[[("a", 1)]], [[("a", -1)]]],
            selections=((0,), (0,)),
        )
        assert cross_item_overlap(result) == 1.0

    def test_disjoint_sets(self):
        result = build_result(
            [[[("a", 1)]], [[("b", -1)]]],
            selections=((0,), (0,)),
        )
        assert cross_item_overlap(result) == 0.0

    def test_single_item_no_pairs(self):
        result = build_result([[[("a", 1)]]], selections=((0,),))
        assert cross_item_overlap(result) == 0.0


class TestPolarityBalance:
    def test_perfectly_characteristic(self):
        reviews = [[("a", 1)], [("a", -1)], [("a", 1)], [("a", -1)]]
        result = build_result([reviews], selections=((0, 1),))
        assert polarity_balance(result) == pytest.approx(1.0)

    def test_skewed_selection(self):
        reviews = [[("a", 1)], [("a", -1)], [("a", 1)], [("a", -1)]]
        result = build_result([reviews], selections=((0, 2),))  # all positive
        assert polarity_balance(result) == pytest.approx(0.5)


class TestRedundancy:
    def test_dominated_review_flagged(self):
        reviews = [[("a", 1)], [("a", 1), ("b", 1)]]
        result = build_result([reviews], selections=((0, 1),))
        assert redundancy(result) == pytest.approx(0.5)

    def test_duplicate_aspect_sets_counted_once(self):
        reviews = [[("a", 1)], [("a", -1)]]
        result = build_result([reviews], selections=((0, 1),))
        assert redundancy(result) == pytest.approx(0.5)

    def test_distinct_selections_not_redundant(self):
        reviews = [[("a", 1)], [("b", 1)]]
        result = build_result([reviews], selections=((0, 1),))
        assert redundancy(result) == 0.0


class TestOnRealSelections:
    def test_metrics_bounded(self, instance, config):
        result = make_selector("CompaReSetS+").select(instance, config)
        for metric in (aspect_coverage, cross_item_overlap, polarity_balance):
            assert 0.0 <= metric(result) <= 1.0
        assert 0.0 <= redundancy(result) <= 1.0

    def test_plus_synchronises_more_than_crs(self, instances):
        config = SelectionConfig(max_reviews=3, mu=0.01)
        plus = make_selector("CompaReSetS+")
        crs = make_selector("CRS")
        plus_overlap = sum(
            cross_item_overlap(plus.select(i, config)) for i in instances
        )
        crs_overlap = sum(
            cross_item_overlap(crs.select(i, config)) for i in instances
        )
        assert plus_overlap >= crs_overlap - 1e-9
