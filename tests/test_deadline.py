"""Tests for the deadline/budget layer and the retry policy."""

import math

import pytest

from repro.resilience.deadline import (
    Budget,
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
    resolve_deadline,
)
from repro.resilience.retry import RetryPolicy


class FakeClock:
    """A manually advanced monotonic clock for deterministic tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.bounded
        assert not deadline.expired()
        assert deadline.remaining() == math.inf
        deadline.check()  # no raise

    def test_expires_with_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_check_raises_with_context(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="solving instance 3"):
            deadline.check("solving instance 3")

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline(-1.0)

    def test_tightened_takes_minimum(self):
        clock = FakeClock()
        loose = Deadline.after(100.0, clock=clock)
        tight = loose.tightened(2.0)
        assert tight.remaining() == pytest.approx(2.0)
        # Tightening with a looser cap keeps the original deadline.
        still_loose = Deadline.after(1.0, clock=clock).tightened(50.0)
        assert still_loose.remaining() == pytest.approx(1.0)

    def test_tightened_none_is_identity(self):
        deadline = Deadline.after(5.0)
        assert deadline.tightened(None) is deadline

    def test_as_time_limit_clamps(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        assert deadline.as_time_limit(cap=3.0) == pytest.approx(3.0)
        clock.advance(20.0)
        assert deadline.as_time_limit(cap=3.0) == pytest.approx(1e-3)

    def test_as_time_limit_unlimited_needs_cap(self):
        with pytest.raises(ValueError, match="unlimited"):
            Deadline.unlimited().as_time_limit()
        assert Deadline.unlimited().as_time_limit(cap=60.0) == 60.0


class TestBudget:
    def test_layered_deadlines(self):
        clock = FakeClock()
        budget = Budget(
            total_seconds=10.0, per_instance_seconds=4.0, per_solve_seconds=1.0
        )
        overall = budget.start(clock=clock)
        instance = budget.instance_deadline(overall)
        solve = budget.solve_deadline(instance)
        assert instance.remaining() == pytest.approx(4.0)
        assert solve.remaining() == pytest.approx(1.0)
        # Late in the run, the overall budget dominates every layer.
        clock.advance(9.5)
        assert budget.instance_deadline(overall).remaining() == pytest.approx(0.5)
        assert budget.solve_deadline(
            budget.instance_deadline(overall)
        ).remaining() == pytest.approx(0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="total_seconds"):
            Budget(total_seconds=0.0)


class TestDeadlineScope:
    def test_ambient_scope_resolves(self):
        assert current_deadline() is None
        with deadline_scope(5.0) as installed:
            assert current_deadline() is installed
            assert resolve_deadline(None) is installed
        assert current_deadline() is None

    def test_explicit_beats_ambient(self):
        with deadline_scope(100.0):
            explicit = Deadline.after(1.0)
            assert resolve_deadline(explicit) is explicit

    def test_no_scope_resolves_unlimited(self):
        resolved = resolve_deadline(None)
        assert not resolved.bounded

    def test_scope_nesting_restores(self):
        with deadline_scope(10.0) as outer:
            with deadline_scope(1.0) as inner:
                assert current_deadline() is inner
            assert current_deadline() is outer


class TestRetryPolicy:
    def test_no_retry_delay_is_zero(self):
        assert RetryPolicy.none().delay_before(1) == 0.0

    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_seconds=0.1, backoff_multiplier=2.0, jitter=0.5
        )
        delays_a = [policy.delay_before(a, seed=7) for a in (2, 3, 4)]
        delays_b = [policy.delay_before(a, seed=7) for a in (2, 3, 4)]
        assert delays_a == delays_b  # deterministic jitter
        # Jitter stays within +/-50% of the exponential base.
        for attempt, delay in zip((2, 3, 4), delays_a):
            base = 0.1 * 2.0 ** (attempt - 2)
            assert 0.5 * base <= delay <= 1.5 * base
        assert delays_a[2] > delays_a[0]

    def test_different_seeds_desynchronise(self):
        policy = RetryPolicy(max_attempts=3, backoff_seconds=1.0, jitter=0.9)
        assert policy.delay_before(2, seed=1) != policy.delay_before(2, seed=2)

    def test_call_retries_then_succeeds(self):
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 3:
                raise RuntimeError("transient")
            return "done"

        policy = RetryPolicy(max_attempts=3, backoff_seconds=0.0)
        assert policy.call(flaky) == "done"
        assert attempts == [1, 2, 3]

    def test_call_exhausts_and_raises_last(self):
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)

        def always_fails(attempt):
            raise RuntimeError(f"attempt {attempt}")

        with pytest.raises(RuntimeError, match="attempt 2"):
            policy.call(always_fails)

    def test_call_never_retries_deadline_exceeded(self):
        attempts = []

        def exhausted(attempt):
            attempts.append(attempt)
            raise DeadlineExceeded("budget gone")

        policy = RetryPolicy(max_attempts=5, backoff_seconds=0.0)
        with pytest.raises(DeadlineExceeded):
            policy.call(exhausted)
        assert attempts == [1]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
