"""Tests for distance helpers (Eq. 2, Eq. 9)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distance import concat_scaled, cosine_similarity, squared_l2

vectors = arrays(
    float, st.integers(1, 8), elements=st.floats(-10, 10, allow_nan=False)
)


class TestSquaredL2:
    def test_zero_for_identical(self):
        assert squared_l2(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_known_value(self):
        assert squared_l2(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 25.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            squared_l2(np.zeros(2), np.zeros(3))

    @given(vectors)
    def test_non_negative_and_symmetric(self, x):
        y = x[::-1].copy()
        assert squared_l2(x, y) >= 0
        assert squared_l2(x, y) == pytest.approx(squared_l2(y, x))


class TestCosine:
    def test_identical_direction(self):
        assert cosine_similarity(np.array([1.0, 1.0]), np.array([2.0, 2.0])) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.zeros(2), np.zeros(3))

    @given(vectors)
    def test_bounded(self, x):
        y = np.roll(x, 1)
        value = cosine_similarity(x, y)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestConcatScaled:
    def test_eq4_construction(self):
        tau = np.array([0.5, 0.5])
        gamma = np.array([1.0])
        result = concat_scaled((1.0, tau), (2.0, gamma))
        np.testing.assert_allclose(result, [0.5, 0.5, 2.0])

    def test_empty(self):
        assert concat_scaled().shape == (0,)

    def test_concat_distance_decomposes(self):
        """Delta([a;kb],[c;kd]) = Delta(a,c) + k^2 Delta(b,d) — Eq. 4."""
        a, c = np.array([1.0, 2.0]), np.array([0.0, 1.0])
        b, d = np.array([3.0]), np.array([1.0])
        k = 2.5
        combined = squared_l2(concat_scaled((1, a), (k, b)), concat_scaled((1, c), (k, d)))
        assert combined == pytest.approx(squared_l2(a, c) + k**2 * squared_l2(b, d))
