"""Degenerate inputs and failure injection across the pipeline.

Every scenario here was chosen to hit a boundary the normal workloads
don't: empty annotation sets, fully duplicated reviews, over-generous
budgets, zero-weight graphs, hostile text.  The invariant under test is
uniform: no crashes, and outputs stay structurally valid.
"""

import numpy as np
import pytest

from repro.core.problem import SelectionConfig
from repro.core.selection import SELECTORS, make_selector
from repro.data.instances import ComparisonInstance
from repro.data.models import Product
from repro.graph.similarity import build_item_graph
from repro.graph.target_hks import solve_greedy, solve_ilp
from repro.text.rouge import rouge_scores
from tests.conftest import make_review

MAIN_SELECTORS = ("Random", "CRS", "CompaReSetS_Greedy", "CompaReSetS", "CompaReSetS+")


def instance_of(review_lists):
    products = tuple(
        Product(product_id=f"p{i}", title=f"P{i}", category="C")
        for i in range(len(review_lists))
    )
    reviews = tuple(
        tuple(
            make_review(f"r{i}_{j}", f"p{i}", mentions)
            for j, mentions in enumerate(mention_lists)
        )
        for i, mention_lists in enumerate(review_lists)
    )
    return ComparisonInstance(products=products, reviews=reviews)


class TestMentionlessReviews:
    """Reviews with no annotations produce all-zero columns everywhere."""

    @pytest.mark.parametrize("name", MAIN_SELECTORS)
    def test_selectors_survive(self, name):
        instance = instance_of([[[], [], []], [[], []]])
        config = SelectionConfig(max_reviews=2)
        result = make_selector(name).select(
            instance, config, rng=np.random.default_rng(0)
        )
        for selection in result.selections:
            assert len(selection) <= 2

    def test_graph_degenerates_gracefully(self):
        instance = instance_of([[[], []], [[]], [[]]])
        config = SelectionConfig(max_reviews=1)
        result = make_selector("CompaReSetS").select(instance, config)
        graph = build_item_graph(result, config)
        # All distances identical -> all weights zero; solvers still run.
        solution = solve_greedy(graph.weights, 2)
        assert 0 in solution.selected


class TestFullyDuplicatedReviews:
    """Every review identical: dedup collapses to a single column."""

    @pytest.mark.parametrize("name", MAIN_SELECTORS)
    def test_selectors_survive(self, name):
        mentions = [("battery", 1), ("screen", -1)]
        instance = instance_of([[mentions] * 6, [mentions] * 4])
        config = SelectionConfig(max_reviews=3)
        result = make_selector(name).select(
            instance, config, rng=np.random.default_rng(0)
        )
        for selection, reviews in zip(result.selections, instance.reviews):
            assert len(set(selection)) == len(selection)
            assert all(0 <= j < len(reviews) for j in selection)


class TestOverGenerousBudget:
    def test_budget_exceeding_review_count(self, paper_example_instance):
        config = SelectionConfig(max_reviews=50)
        for name in MAIN_SELECTORS:
            result = make_selector(name).select(
                paper_example_instance, config, rng=np.random.default_rng(0)
            )
            assert len(result.selections[0]) <= 7  # only 7 reviews exist


class TestMinimalInstances:
    def test_single_comparative_item(self):
        instance = instance_of([[[("a", 1)]], [[("a", -1)]]])
        config = SelectionConfig(max_reviews=1)
        result = make_selector("CompaReSetS+").select(instance, config)
        graph = build_item_graph(result, config)
        solution = solve_ilp(graph.weights, 2, backend="bnb", time_limit=5)
        assert set(solution.selected) == {0, 1}

    def test_target_only_instance(self):
        instance = instance_of([[[("a", 1)], [("b", -1)]]])
        config = SelectionConfig(max_reviews=1)
        for name in MAIN_SELECTORS:
            result = make_selector(name).select(
                instance, config, rng=np.random.default_rng(0)
            )
            assert len(result.selections) == 1


class TestZeroWeightGraph:
    def test_solvers_agree_on_arbitrary_subsets(self):
        weights = np.zeros((6, 6))
        greedy = solve_greedy(weights, 3)
        exact = solve_ilp(weights, 3, backend="bnb", time_limit=5)
        assert greedy.weight == exact.weight == 0.0
        assert len(greedy.selected) == len(exact.selected) == 3


class TestHostileText:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "    \n\t  ",
            "!!!???...",
            "éèê unicode café naïve",
            "a" * 5000,
            "\N{SNOWMAN}" * 30,
        ],
    )
    def test_rouge_never_crashes(self, text):
        scores = rouge_scores(text, "the battery is great")
        for score in scores.values():
            assert 0.0 <= score.f1 <= 1.0

    def test_extraction_never_crashes(self):
        from repro.text.aspects import AspectTerm, AspectVocabulary
        from repro.text.sentiment import extract_mentions

        vocabulary = AspectVocabulary(
            terms=(AspectTerm(stem="batteri", surface="battery",
                              document_frequency=1, rating_correlation=0.0),)
        )
        for text in ("", "...", "battery " * 1000, "\x00\x01battery"):
            mentions = extract_mentions(text, vocabulary)
            assert isinstance(mentions, tuple)


class TestExtremeWeights:
    def test_huge_lambda_still_valid(self, paper_example_instance):
        config = SelectionConfig(max_reviews=3, lam=1e6)
        result = make_selector("CompaReSetS").select(paper_example_instance, config)
        assert len(result.selections[0]) <= 3

    def test_zero_lambda_zero_mu(self, instances):
        config = SelectionConfig(max_reviews=3, lam=0.0, mu=0.0)
        result = make_selector("CompaReSetS+").select(instances[0], config)
        assert result.selections


class TestRegistryCompleteness:
    def test_all_registered_selectors_run_on_shared_instance(self, instance):
        """Every selector in the registry handles a realistic instance."""
        config = SelectionConfig(max_reviews=2)
        for name in SELECTORS:
            if name == "CompaReSetS_Exhaustive" and any(
                len(r) > 25 for r in instance.reviews
            ):
                continue  # exponential solver guarded separately
            result = make_selector(name).select(
                instance, config, rng=np.random.default_rng(0)
            )
            assert len(result.selections) == instance.num_items
