"""Tests for the EFM preference model extension."""

import numpy as np
import pytest

from repro.data.synthetic import generate_corpus
from repro.prefs import EfmConfig, EfmModel, efm_target_vector


@pytest.fixture(scope="module")
def fitted():
    corpus = generate_corpus("Toy", scale=0.25, seed=5)
    model = EfmModel(EfmConfig(num_factors=6, iterations=80, seed=1)).fit(corpus)
    return corpus, model


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EfmConfig(num_factors=0)
        with pytest.raises(ValueError):
            EfmConfig(iterations=0)
        with pytest.raises(ValueError):
            EfmConfig(weight_ratings=-1.0)


class TestFitting:
    def test_requires_fit_before_query(self):
        model = EfmModel()
        with pytest.raises(RuntimeError, match="fit"):
            model.item_aspect_quality("p1")

    def test_factors_non_negative(self, fitted):
        _, model = fitted
        assert (model._item_factors >= 0).all()
        assert (model._user_factors >= 0).all()
        assert (model._aspect_factors >= 0).all()

    def test_rating_reconstruction_beats_constant(self, fitted):
        corpus, model = fitted
        rmse = model.reconstruction_error(corpus)
        ratings = np.array([r.rating for r in corpus.reviews])
        constant_rmse = float(np.sqrt(np.mean((ratings - ratings.mean()) ** 2)))
        assert rmse < constant_rmse + 0.3

    def test_deterministic_given_seed(self):
        corpus = generate_corpus("Toy", scale=0.2, seed=5)
        a = EfmModel(EfmConfig(num_factors=4, iterations=30, seed=2)).fit(corpus)
        b = EfmModel(EfmConfig(num_factors=4, iterations=30, seed=2)).fit(corpus)
        pid = corpus.products[0].product_id
        np.testing.assert_allclose(a.item_aspect_quality(pid), b.item_aspect_quality(pid))


class TestQueries:
    def test_quality_tracks_observed_sentiment(self, fitted):
        """Items with clearly positive sentiment on an aspect score higher
        than items with clearly negative sentiment on the same aspect."""
        corpus, model = fitted
        aspect_index = {a: i for i, a in enumerate(model.aspects)}
        gaps = []
        for aspect, position in aspect_index.items():
            positives, negatives = [], []
            for product in corpus.products:
                signed = [
                    r.signed_strength_for(aspect)
                    for r in corpus.reviews_of(product.product_id)
                    if aspect in r.aspects
                ]
                if len(signed) >= 3:
                    mean = np.mean(signed)
                    quality = model.item_aspect_quality(product.product_id)[position]
                    if mean > 0.5:
                        positives.append(quality)
                    elif mean < -0.5:
                        negatives.append(quality)
            if positives and negatives:
                gaps.append(np.mean(positives) - np.mean(negatives))
        assert gaps, "the corpus should contain polarised aspects"
        assert np.mean(gaps) > 0

    def test_unknown_ids_raise(self, fitted):
        _, model = fitted
        with pytest.raises(KeyError):
            model.item_aspect_quality("nope")
        with pytest.raises(KeyError):
            model.user_aspect_attention("nope")

    def test_predicted_rating_range(self, fitted):
        corpus, model = fitted
        review = corpus.reviews[0]
        value = model.predict_rating(review.reviewer_id, review.product_id)
        assert 1.0 <= value <= 5.0


class TestTargetVector:
    def test_range_and_alignment(self, fitted):
        corpus, model = fitted
        aspect_order = corpus.aspect_vocabulary()
        pid = corpus.products[0].product_id
        target = efm_target_vector(model, pid, aspect_order)
        assert target.shape == (len(aspect_order),)
        assert ((target >= 0) & (target <= 1)).all()

    def test_unknown_aspects_zero(self, fitted):
        corpus, model = fitted
        pid = corpus.products[0].product_id
        target = efm_target_vector(model, pid, ["not-an-aspect"])
        assert target[0] == 0.0
