"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; a refactor that breaks one
should fail CI.  Each script is executed in-process via runpy (so
coverage and import errors surface normally) with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
FAST_EXAMPLES = [
    "quickstart.py",
    "core_list_narrowing.py",
    "llm_style_comparison.py",
    "amazon_conversion.py",
    "learned_preferences.py",
]
SLOW_EXAMPLES = [
    "case_study.py",
    "opinion_schemes.py",
    "full_pipeline.py",
]


def run_example(name: str, capsys) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    saved_argv = sys.argv
    sys.argv = [str(script)]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    output = run_example(name, capsys)
    assert output.strip(), f"{name} produced no output"


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name, capsys):
    output = run_example(name, capsys)
    assert output.strip(), f"{name} produced no output"
