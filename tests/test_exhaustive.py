"""Tests for the brute-force CompaReSetS solver and heuristic quality."""

import pytest

from repro.core.compare_sets import CompareSetsSelector
from repro.core.exhaustive import ExhaustiveSelector, exhaustive_select_for_item
from repro.core.objective import compare_sets_objective, item_objective
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space, make_selector


class TestExhaustive:
    def test_finds_zero_objective_on_paper_example(self, paper_example_instance):
        config = SelectionConfig(max_reviews=3)
        result = ExhaustiveSelector().select(paper_example_instance, config)
        assert compare_sets_objective(result, config) == pytest.approx(0.0, abs=1e-12)
        assert result.selections[0]  # {r5, r6, r7} or an equivalent optimum

    def test_never_worse_than_integer_regression(self, instances):
        config = SelectionConfig(max_reviews=2)
        exhaustive = ExhaustiveSelector()
        heuristic = CompareSetsSelector()
        for inst in instances[:3]:
            exact = compare_sets_objective(exhaustive.select(inst, config), config)
            approx = compare_sets_objective(heuristic.select(inst, config), config)
            assert exact <= approx + 1e-9

    def test_heuristic_close_to_optimum(self, instances):
        """Integer regression stays within a modest factor of the optimum."""
        config = SelectionConfig(max_reviews=2)
        exhaustive = ExhaustiveSelector()
        heuristic = CompareSetsSelector()
        ratios = []
        for inst in instances[:3]:
            exact = compare_sets_objective(exhaustive.select(inst, config), config)
            approx = compare_sets_objective(heuristic.select(inst, config), config)
            if exact > 1e-9:
                ratios.append(approx / exact)
        if ratios:
            assert max(ratios) < 2.0

    def test_registered_as_selector(self):
        assert make_selector("CompaReSetS_Exhaustive").name == "CompaReSetS_Exhaustive"

    def test_safety_bound(self, paper_example_instance):
        config = SelectionConfig(max_reviews=3)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0] * 20  # 140 reviews
        tau = space.opinion_vector(paper_example_instance.reviews[0])
        gamma = space.aspect_vector(paper_example_instance.reviews[0])
        big_config = SelectionConfig(max_reviews=7)
        with pytest.raises(ValueError, match="exceed"):
            exhaustive_select_for_item(space, reviews, tau, gamma, big_config)

    def test_item_optimum_matches_manual_scan(self, paper_example_instance):
        config = SelectionConfig(max_reviews=1)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)
        selection, objective = exhaustive_select_for_item(
            space, reviews, tau, gamma, config
        )
        manual_best = min(
            item_objective(space, [r], tau, gamma, config.lam) for r in reviews
        )
        assert objective == pytest.approx(min(manual_best, item_objective(space, [], tau, gamma, config.lam)))
