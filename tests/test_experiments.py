"""Structure tests for the per-table/figure experiment modules.

These run every experiment at a deliberately tiny scale and assert the
*structure* of results (row counts, rendering) plus the cheapest of the
paper's shape claims (everything beats Random).  Full-scale shapes are
exercised by the benchmark harness.
"""

import numpy as np
import pytest

from repro.eval.runner import EvaluationSettings
from repro.experiments import (
    case_study,
    fig5,
    fig6,
    fig7,
    fig11,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)


@pytest.fixture(scope="module")
def tiny_settings() -> EvaluationSettings:
    return EvaluationSettings(
        categories=("Cellphone",),
        scale=0.3,
        max_instances=5,
        max_comparisons=5,
        min_reviews=3,
        budgets=(3,),
    )


class TestTable2:
    def test_rows_and_rendering(self, tiny_settings):
        stats = table2.run_table2(tiny_settings)
        assert len(stats) == 1
        text = table2.render_table2(stats)
        assert "#Product" in text and "Cellphone" in text


class TestTable3:
    def test_cells_and_shape(self, tiny_settings):
        cells = table3.run_table3(tiny_settings)
        # 1 dataset x 1 budget x 2 views x 5 algorithms
        assert len(cells) == 10
        by_key = {(c.algorithm, c.view): c for c in cells}
        assert by_key[("CRS", "target")].scores.rouge_1 > by_key[
            ("Random", "target")
        ].scores.rouge_1
        text = table3.render_table3(cells, "target")
        assert "CompaReSetS+" in text


class TestTable4:
    def test_cells(self, tiny_settings):
        cells = table4.run_table4(tiny_settings)
        assert len(cells) == 15  # 5 algorithms x 3 schemes
        text = table4.render_table4(cells)
        assert "unary-scale" in text


class TestTable5:
    def test_rows(self, tiny_settings):
        rows = table5.run_table5(tiny_settings, time_limit=5.0)
        assert len(rows) == 1
        comparison = rows[0].comparison
        assert comparison.k == 3
        assert comparison.random_ratio <= comparison.greedy_ratio + 1e-9
        assert 0 <= comparison.optimal_percent <= 100
        text = table5.render_table5(rows)
        assert "Greedy ratio" in text


class TestTable6:
    def test_cells(self, tiny_settings):
        cells = table6.run_table6(tiny_settings, time_limit=5.0)
        # 1 dataset x 1 k x 4 strategies x 2 views
        assert len(cells) == 8
        text = table6.render_table6(cells, "among")
        assert "TargetHkS_Greedy" in text


class TestTable7:
    def test_outcomes(self, tiny_settings):
        outcomes = table7.run_table7(tiny_settings)
        assert {o.algorithm for o in outcomes} == {"Random", "CRS", "CompaReSetS+"}
        text = table7.render_table7(outcomes)
        assert "Krippendorff" in text


class TestFig5:
    def test_sweep(self, tiny_settings):
        grid = (0.1, 1.0)
        lam_points, best_lam, mu_points, best_mu = fig5.run_fig5(tiny_settings, grid=grid)
        assert len(lam_points) == 2 and len(mu_points) == 2
        assert best_lam in grid and best_mu in grid
        assert "lambda" in fig5.render_fig5(lam_points, "lambda")


class TestFig6:
    def test_gap_points(self, tiny_settings):
        points = fig6.run_fig6(tiny_settings, num_buckets=2)
        assert points
        views = {p.view for p in points}
        assert views == {"target", "among"}
        text = fig6.render_fig6(points, "target")
        assert "Random" in text


class TestFig7:
    def test_runtime_points(self, tiny_settings):
        points = fig7.run_fig7(
            tiny_settings, comparative_counts=(2, 3), algorithms=("CRS", "CompaReSetS+")
        )
        assert points
        assert all(p.mean_seconds >= 0 for p in points)
        text = fig7.render_fig7(points)
        assert "runtime" in text


class TestFig11:
    def test_curve(self, tiny_settings):
        points = fig11.run_fig11(tiny_settings, budgets=(2, 6))
        assert [p.max_reviews for p in points] == [2, 6]
        text = fig11.render_fig11(points)
        assert "Delta target" in text


class TestCaseStudy:
    def test_runs_and_renders(self, tiny_settings):
        study = case_study.run_case_study(tiny_settings)
        assert study.result.instance.num_items <= 3
        text = case_study.render_case_study(study)
        assert "This item" in text

    def test_unavailable_index_raises(self, tiny_settings):
        with pytest.raises(ValueError, match="case-study"):
            case_study.run_case_study(tiny_settings, instance_index=999)
