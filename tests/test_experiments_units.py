"""Unit tests for experiment-module internals not covered structurally."""

import pytest

from repro.eval.alignment import AlignmentScores
from repro.experiments.fig5 import SensitivityPoint, _best_value
from repro.experiments.table3 import Table3Cell


class TestFig5BestValue:
    def test_picks_highest_mean(self):
        points = [
            SensitivityPoint("A", "lambda", 0.1, 0.20),
            SensitivityPoint("B", "lambda", 0.1, 0.30),
            SensitivityPoint("A", "lambda", 1.0, 0.40),
            SensitivityPoint("B", "lambda", 1.0, 0.10),
        ]
        # means: 0.1 -> 0.25, 1.0 -> 0.25; tie resolves to first max found
        best = _best_value(points, (0.1, 1.0))
        assert best in (0.1, 1.0)

    def test_clear_winner(self):
        points = [
            SensitivityPoint("A", "mu", 0.1, 0.50),
            SensitivityPoint("A", "mu", 1.0, 0.20),
        ]
        assert _best_value(points, (0.1, 1.0)) == 0.1


class TestTable3Rendering:
    def _cell(self, algorithm, rouge_l=0.1, p=None):
        return Table3Cell(
            dataset="D",
            algorithm=algorithm,
            view="target",
            max_reviews=3,
            scores=AlignmentScores(0.2, 0.05, rouge_l, num_pairs=4),
            best_vs_second_p=p,
        )

    def test_significance_marker_rendered(self):
        from repro.experiments.table3 import render_table3

        cells = [self._cell("Best", p=0.01), self._cell("Other")]
        text = render_table3(cells, "target")
        assert "*" in text

    def test_no_marker_when_insignificant(self):
        from repro.experiments.table3 import render_table3

        cells = [self._cell("Best", p=0.50), self._cell("Other")]
        text = render_table3(cells, "target")
        assert "*" not in text


class TestSelectorRunEmpty:
    def test_mean_seconds_empty(self):
        from repro.eval.runner import SelectorRun

        run = SelectorRun(algorithm="x", results=(), seconds_per_instance=())
        assert run.mean_seconds == 0.0


class TestSingleItemGraph:
    def test_graph_of_one_item(self, paper_example_instance, config):
        from repro.core.selection import SelectionResult
        from repro.graph.similarity import build_item_graph

        result = SelectionResult(
            instance=paper_example_instance, selections=((0,),), algorithm="x"
        )
        graph = build_item_graph(result, config)
        assert graph.num_items == 1
        assert graph.weights.shape == (1, 1)
        assert graph.weights[0, 0] == 0.0
