"""Tests for the TargetHkS solver fallback chain."""

import numpy as np
import pytest

from repro.graph.target_hks import HksSolution, solve_brute_force, solve_greedy
from repro.resilience.deadline import Deadline
from repro.resilience.fallback import (
    FallbackChain,
    FallbackExhausted,
    solve_with_fallback,
)


@pytest.fixture()
def weights() -> np.ndarray:
    rng = np.random.default_rng(11)
    raw = rng.random((12, 12))
    symmetric = (raw + raw.T) / 2
    np.fill_diagonal(symmetric, 0.0)
    return symmetric


def _failing_stage(name="boom"):
    def solver(weights, k, target, deadline):
        raise RuntimeError("injected solver failure")

    return (name, solver)


def _greedy_stage(name="custom-greedy"):
    def solver(weights, k, target, deadline):
        return solve_greedy(weights, k, target)

    return (name, solver)


class TestFallbackChain:
    def test_primary_backend_answers(self, weights):
        outcome = FallbackChain().solve(weights, k=4)
        assert outcome.backend == "milp"
        assert not outcome.degraded
        assert [a.status for a in outcome.attempts] == ["ok"]
        exact = solve_brute_force(weights, 4)
        assert outcome.solution.weight == pytest.approx(exact.weight)

    def test_falls_through_on_error_with_provenance(self, weights):
        chain = FallbackChain(stages=[_failing_stage(), "bnb", "greedy"])
        outcome = chain.solve(weights, k=4)
        assert outcome.backend == "bnb"
        assert outcome.degraded
        assert [a.status for a in outcome.attempts] == ["error", "ok"]
        assert "injected solver failure" in outcome.attempts[0].error

    def test_double_failure_lands_on_greedy(self, weights):
        chain = FallbackChain(
            stages=[_failing_stage("a"), _failing_stage("b"), "greedy"]
        )
        outcome = chain.solve(weights, k=4)
        assert outcome.backend == "greedy"
        assert outcome.degraded
        greedy = solve_greedy(weights, 4)
        assert outcome.solution.selected == greedy.selected

    def test_expired_deadline_skips_to_terminal_stage(self, weights):
        chain = FallbackChain()
        outcome = chain.solve(weights, k=4, deadline=Deadline.after(0.0))
        assert outcome.backend == "greedy"
        assert outcome.degraded
        assert [a.status for a in outcome.attempts] == ["deadline", "deadline", "ok"]

    def test_all_stages_fail_raises(self, weights):
        chain = FallbackChain(stages=[_failing_stage("a"), _failing_stage("b")])
        with pytest.raises(FallbackExhausted, match="a=error"):
            chain.solve(weights, k=4)

    def test_custom_stage_solver(self, weights):
        chain = FallbackChain(stages=[_greedy_stage()])
        outcome = chain.solve(weights, k=3)
        assert outcome.backend == "custom-greedy"
        assert isinstance(outcome.solution, HksSolution)

    def test_unknown_builtin_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown fallback stage"):
            FallbackChain(stages=["gurobi"])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            FallbackChain(stages=[])

    def test_proven_optimal_provenance_survives(self, weights):
        outcome = FallbackChain(time_limit=60.0).solve(weights, k=3)
        assert outcome.solution.proven_optimal
        assert outcome.attempts[-1].backend == outcome.backend


class TestSolveWithFallback:
    def test_one_shot_wrapper(self, weights):
        outcome = solve_with_fallback(weights, k=4, time_limit=30.0)
        assert outcome.backend == "milp"
        assert outcome.solution.selected[0] == 0 or 0 in outcome.solution.selected
