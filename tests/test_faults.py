"""Tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.core.selection import make_selector
from repro.resilience.faults import (
    FaultInjectingSelector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec(kind="hang", seconds=-1.0)


class TestFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        keys = [f"P{i}" for i in range(50)]
        plan_a = FaultPlan.seeded(keys, seed=9, crash_rate=0.2, hang_rate=0.1)
        plan_b = FaultPlan.seeded(keys, seed=9, crash_rate=0.2, hang_rate=0.1)
        assert plan_a.keys() == plan_b.keys()
        for key in plan_a.keys():
            assert plan_a.fault_for(key) == plan_b.fault_for(key)

    def test_different_seeds_differ(self):
        keys = [f"P{i}" for i in range(100)]
        plan_a = FaultPlan.seeded(keys, seed=1, crash_rate=0.3)
        plan_b = FaultPlan.seeded(keys, seed=2, crash_rate=0.3)
        assert plan_a.keys() != plan_b.keys()

    def test_rates_partition_kinds(self):
        keys = [f"P{i}" for i in range(200)]
        plan = FaultPlan.seeded(
            keys, seed=3, crash_rate=0.1, hang_rate=0.1, slow_rate=0.1
        )
        kinds = {plan.fault_for(k).kind for k in plan.keys()}
        assert kinds <= {"crash", "hang", "slow"}
        assert 0 < len(plan) < len(keys)

    def test_unscheduled_key_has_no_fault(self):
        plan = FaultPlan({"A": FaultSpec(kind="crash")})
        assert plan.fault_for("B") is None


class TestFaultInjectingSelector:
    def test_registered_in_selector_registry(self):
        selector = make_selector("FaultInjecting", inner="CompaReSetS_Greedy")
        assert selector.name == "FaultInjecting"

    def test_crash_id_raises(self, instance, config):
        selector = FaultInjectingSelector(
            inner="CompaReSetS_Greedy",
            crash_ids=(instance.target.product_id,),
        )
        with pytest.raises(InjectedFault, match="injected crash"):
            selector.select(instance, config)

    def test_clean_instance_delegates(self, instance, config):
        selector = FaultInjectingSelector(inner="CompaReSetS_Greedy")
        fault_free = selector.select(instance, config)
        direct = make_selector("CompaReSetS_Greedy").select(instance, config)
        assert fault_free.selections == direct.selections
        assert fault_free.algorithm == direct.algorithm

    def test_flaky_fails_then_succeeds(self, instance, config, tmp_path):
        selector = FaultInjectingSelector(
            inner="CompaReSetS_Greedy",
            flaky_ids=(instance.target.product_id,),
            flaky_attempts=2,
            scratch_dir=str(tmp_path),
        )
        for _ in range(2):
            with pytest.raises(InjectedFault, match="flaky"):
                selector.select(instance, config)
        result = selector.select(instance, config)  # third attempt passes
        assert result.selections

    def test_flaky_without_scratch_dir_rejected(self):
        with pytest.raises(ValueError, match="scratch_dir"):
            FaultInjectingSelector(flaky_ids=("P1",))

    def test_rng_passes_through_to_inner(self, instance, config):
        selector = FaultInjectingSelector(inner="Random")
        a = selector.select(instance, config, rng=np.random.default_rng(4))
        b = selector.select(instance, config, rng=np.random.default_rng(4))
        assert a.selections == b.selections
