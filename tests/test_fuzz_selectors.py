"""Property-based fuzzing: every selector stays valid on random instances.

Hypothesis generates arbitrary micro-instances (random item counts,
review counts, aspect/sentiment combinations, budgets) and asserts the
structural contract of every registered selector plus finiteness of the
objective functions.  This is the catch-all net under the whole core.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import compare_sets_objective, compare_sets_plus_objective
from repro.core.problem import SelectionConfig
from repro.core.selection import make_selector
from repro.data.instances import ComparisonInstance
from repro.data.models import Product
from tests.conftest import make_review

ASPECT_POOL = ("battery", "screen", "price", "fit", "sound")

mention_strategy = st.tuples(
    st.sampled_from(ASPECT_POOL), st.sampled_from([-1, 0, 1])
)
review_strategy = st.lists(mention_strategy, min_size=0, max_size=4)
item_strategy = st.lists(review_strategy, min_size=1, max_size=6)
instance_strategy = st.lists(item_strategy, min_size=1, max_size=4)

FAST_SELECTORS = (
    "Random",
    "CRS",
    "CompaReSetS_Greedy",
    "CompaReSetS",
    "CompaReSetS+",
    "Comprehensive",
    "PolarityCoverage",
)


def build_instance(review_lists) -> ComparisonInstance:
    products = tuple(
        Product(product_id=f"p{i}", title=f"P{i}", category="C")
        for i in range(len(review_lists))
    )
    reviews = tuple(
        tuple(
            make_review(f"r{i}_{j}", f"p{i}", list(dict.fromkeys(mentions)))
            for j, mentions in enumerate(mention_lists)
        )
        for i, mention_lists in enumerate(review_lists)
    )
    return ComparisonInstance(products=products, reviews=reviews)


@settings(max_examples=40, deadline=None)
@given(instance_strategy, st.integers(1, 5), st.sampled_from(FAST_SELECTORS))
def test_selector_contract(review_lists, budget, selector_name):
    instance = build_instance(review_lists)
    config = SelectionConfig(max_reviews=budget, lam=1.0, mu=0.1)
    selector = make_selector(selector_name)
    result = selector.select(instance, config, rng=np.random.default_rng(0))

    assert len(result.selections) == instance.num_items
    for selection, reviews in zip(result.selections, instance.reviews):
        assert len(selection) <= budget
        assert len(set(selection)) == len(selection)
        assert all(0 <= j < len(reviews) for j in selection)
        assert tuple(sorted(selection)) == selection

    eq1 = compare_sets_objective(result, config)
    eq5 = compare_sets_plus_objective(result, config)
    assert np.isfinite(eq1) and eq1 >= 0
    assert np.isfinite(eq5) and eq5 >= eq1 - 1e-9


@settings(max_examples=25, deadline=None)
@given(instance_strategy, st.integers(1, 3))
def test_plus_beats_or_ties_base_on_literal_objective(review_lists, budget):
    """The alternating pass never worsens its own acceptance objective."""
    instance = build_instance(review_lists)
    config = SelectionConfig(max_reviews=budget, lam=1.0, mu=0.1)
    unit = config.with_(lam=1.0, mu=1.0)
    base = make_selector("CompaReSetS").select(instance, config)
    plus = make_selector("CompaReSetS+").select(instance, config)
    assert compare_sets_plus_objective(plus, unit) <= (
        compare_sets_plus_objective(base, unit) + 1e-9
    )


@settings(max_examples=25, deadline=None)
@given(instance_strategy, st.integers(1, 3))
def test_graph_pipeline_on_fuzzed_instances(review_lists, budget):
    """Selection -> graph -> narrowing survives arbitrary instances."""
    from repro.graph.similarity import build_item_graph
    from repro.graph.target_hks import solve_greedy

    instance = build_instance(review_lists)
    config = SelectionConfig(max_reviews=budget)
    result = make_selector("CompaReSetS").select(instance, config)
    graph = build_item_graph(result, config)
    assert np.isfinite(graph.weights).all()
    k = min(2, instance.num_items)
    solution = solve_greedy(graph.weights, k)
    assert 0 in solution.selected
    narrowed = result.restricted_to_items(
        [0] + sorted(v for v in solution.selected if v != 0)
    )
    assert narrowed.instance.num_items == k
