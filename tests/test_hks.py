"""Tests for the plain (unanchored) HkS solvers."""

import numpy as np
import pytest

from repro.graph.hks import peel_greedy_hks, solve_hks_via_targets
from repro.graph.target_hks import solve_brute_force, solve_greedy
from tests.test_ilp import random_weights


class TestPeelGreedy:
    def test_keeps_k_vertices(self):
        weights = random_weights(10, 0)
        solution = peel_greedy_hks(weights, 4)
        assert len(set(solution.selected)) == 4

    def test_uniform_weights_any_subset_optimal(self):
        weights = np.ones((6, 6))
        np.fill_diagonal(weights, 0)
        solution = peel_greedy_hks(weights, 3)
        assert solution.weight == pytest.approx(3.0)  # C(3,2) edges of weight 1

    def test_k_equals_n(self):
        weights = random_weights(5, 1)
        solution = peel_greedy_hks(weights, 5)
        assert sorted(solution.selected) == list(range(5))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            peel_greedy_hks(random_weights(4, 0), 9)

    def test_isolates_removed_first(self):
        """A vertex with zero weight everywhere is peeled before others."""
        weights = random_weights(6, 2)
        weights[3, :] = 0.0
        weights[:, 3] = 0.0
        solution = peel_greedy_hks(weights, 4)
        assert 3 not in solution.selected


class TestHksViaTargets:
    def test_exact_with_brute_force_subsolver(self):
        """Anchoring at every vertex recovers the global optimum (§3.1)."""
        for seed in range(5):
            weights = random_weights(8, seed)
            via_targets = solve_hks_via_targets(weights, 3)
            global_best = max(
                solve_brute_force(weights, 3, target=v).weight
                for v in range(8)
            )
            assert via_targets.weight == pytest.approx(global_best)

    def test_with_greedy_subsolver_is_multistart_heuristic(self):
        weights = random_weights(10, 7)
        multi = solve_hks_via_targets(
            weights, 4, target_solver=lambda w, k, t: solve_greedy(w, k, target=t)
        )
        single = solve_greedy(weights, 4, target=0)
        assert multi.weight >= single.weight - 1e-9

    def test_beats_or_matches_peeling(self):
        for seed in range(5):
            weights = random_weights(9, seed)
            exact = solve_hks_via_targets(weights, 4)
            peel = peel_greedy_hks(weights, 4)
            assert exact.weight >= peel.weight - 1e-9
