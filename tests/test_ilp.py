"""Tests for the exact TargetHkS solvers (HiGHS MILP + branch and bound)."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ilp import (
    BranchAndBoundSolver,
    MilpBackendSolver,
    greedy_incumbent,
    subset_weight,
)
from repro.graph.target_hks import solve_brute_force
from repro.resilience.deadline import Deadline


def random_weights(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    distances = rng.uniform(0, 10, (n, n))
    distances = (distances + distances.T) / 2
    np.fill_diagonal(distances, 0)
    weights = distances.max() - distances
    np.fill_diagonal(weights, 0)
    return weights


class TestSubsetWeight:
    def test_pair(self):
        weights = np.array([[0.0, 3.0], [3.0, 0.0]])
        assert subset_weight(weights, (0, 1)) == 3.0

    def test_singleton_and_empty(self):
        weights = random_weights(4, 0)
        assert subset_weight(weights, (2,)) == 0.0
        assert subset_weight(weights, ()) == 0.0

    def test_triangle(self):
        weights = np.zeros((3, 3))
        weights[0, 1] = weights[1, 0] = 1.0
        weights[0, 2] = weights[2, 0] = 2.0
        weights[1, 2] = weights[2, 1] = 4.0
        assert subset_weight(weights, (0, 1, 2)) == 7.0


class TestValidation:
    @pytest.mark.parametrize("solver_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_bad_k(self, solver_cls):
        with pytest.raises(ValueError, match="k must be"):
            solver_cls(time_limit=5).solve(random_weights(4, 0), k=9)

    @pytest.mark.parametrize("solver_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_bad_target(self, solver_cls):
        with pytest.raises(ValueError, match="target"):
            solver_cls(time_limit=5).solve(random_weights(4, 0), k=2, target=7)

    @pytest.mark.parametrize("solver_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_asymmetric_rejected(self, solver_cls):
        weights = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            solver_cls(time_limit=5).solve(weights, k=2)

    def test_bad_time_limit(self):
        with pytest.raises(ValueError):
            MilpBackendSolver(time_limit=0)
        with pytest.raises(ValueError):
            BranchAndBoundSolver(time_limit=-1)


class TestExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("backend_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_matches_brute_force(self, seed, k, backend_cls):
        weights = random_weights(9, seed)
        expected = solve_brute_force(weights, k)
        solution = backend_cls(time_limit=30).solve(weights, k)
        assert solution.weight == pytest.approx(expected.weight, abs=1e-6)
        assert solution.proven_optimal
        assert 0 in solution.selected
        assert len(solution.selected) == k

    @pytest.mark.parametrize("backend_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_non_default_target(self, backend_cls):
        weights = random_weights(7, 3)
        expected = solve_brute_force(weights, 3, target=4)
        solution = backend_cls(time_limit=30).solve(weights, 3, target=4)
        assert solution.weight == pytest.approx(expected.weight, abs=1e-6)
        assert 4 in solution.selected

    @pytest.mark.parametrize("backend_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_k_equals_n(self, backend_cls):
        weights = random_weights(5, 1)
        solution = backend_cls(time_limit=10).solve(weights, 5)
        assert sorted(solution.selected) == list(range(5))

    @pytest.mark.parametrize("backend_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_k_one(self, backend_cls):
        weights = random_weights(5, 1)
        solution = backend_cls(time_limit=10).solve(weights, 1)
        assert solution.selected == (0,)
        assert solution.weight == 0.0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(4, 8), st.integers(2, 4))
    def test_property_equivalence(self, seed, n, k):
        weights = random_weights(n, seed)
        expected = solve_brute_force(weights, min(k, n))
        bnb = BranchAndBoundSolver(time_limit=30).solve(weights, min(k, n))
        assert bnb.weight == pytest.approx(expected.weight, abs=1e-6)


class TestTimeLimit:
    def test_bnb_times_out_gracefully(self):
        weights = random_weights(40, 9)
        solution = BranchAndBoundSolver(time_limit=0.01).solve(weights, 12)
        # Either finished extremely fast (optimal) or returned the incumbent.
        assert len(solution.selected) == 12
        assert 0 in solution.selected
        assert solution.weight > 0

    def test_reported_weight_consistent(self):
        weights = random_weights(12, 5)
        solution = BranchAndBoundSolver(time_limit=10).solve(weights, 4)
        assert solution.weight == pytest.approx(
            subset_weight(weights, solution.selected)
        )

    @pytest.mark.parametrize("solver_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_time_limit_returns_incumbent_not_exception(self, solver_cls):
        """At the limit the solvers degrade to a feasible, unproven answer."""
        weights = random_weights(400, 2)
        solution = solver_cls(time_limit=0.02).solve(weights, 10)
        assert not solution.proven_optimal
        assert len(solution.selected) == 10
        assert 0 in solution.selected
        assert solution.weight == pytest.approx(
            subset_weight(weights, solution.selected)
        )

    def test_bnb_deadline_respected_inside_bound(self):
        """Regression: the deadline is polled inside ``bound()``, so even a
        single expensive bound evaluation cannot blow past the limit."""
        weights = random_weights(500, 4)
        limit = 0.05
        solver = BranchAndBoundSolver(time_limit=limit)
        start = time.perf_counter()
        solution = solver.solve(weights, 12)
        elapsed = time.perf_counter() - start
        assert elapsed < limit + 0.25  # tolerance for one bound sweep + setup
        assert solution.solve_seconds < limit + 0.25
        assert not solution.proven_optimal

    @pytest.mark.parametrize("solver_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_explicit_deadline_tightens_time_limit(self, solver_cls):
        weights = random_weights(400, 6)
        solver = solver_cls(time_limit=60.0)
        start = time.perf_counter()
        solution = solver.solve(weights, 10, deadline=Deadline.after(0.05))
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0
        assert len(solution.selected) == 10

    @pytest.mark.parametrize("solver_cls", [MilpBackendSolver, BranchAndBoundSolver])
    def test_expired_deadline_yields_greedy_incumbent(self, solver_cls):
        weights = random_weights(30, 7)
        solution = solver_cls(time_limit=60.0).solve(
            weights, 5, deadline=Deadline.after(0.0)
        )
        assert not solution.proven_optimal
        assert len(solution.selected) == 5


class TestGreedyIncumbent:
    def test_feasible_and_anchored(self):
        weights = random_weights(20, 8)
        selected = greedy_incumbent(weights, 6, 3)
        assert len(selected) == 6
        assert 3 in selected
        assert len(set(selected)) == 6

    def test_matches_brute_force_on_tiny_instance(self):
        # With k = n the greedy incumbent is trivially optimal.
        weights = random_weights(4, 0)
        assert sorted(greedy_incumbent(weights, 4, 0)) == [0, 1, 2, 3]
