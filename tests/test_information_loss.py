"""Tests for the Fig.-11 information-loss measurement."""

import pytest

from repro.core.selection import make_selector
from repro.eval.information_loss import information_loss_curve, measure_result


class TestMeasureResult:
    def test_per_item_lengths(self, instance, config, rng):
        result = make_selector("Random").select(instance, config, rng=rng)
        deltas, cosines = measure_result(result, config)
        assert len(deltas) == instance.num_items
        assert len(cosines) == instance.num_items

    def test_bounds(self, instance, config, rng):
        result = make_selector("Random").select(instance, config, rng=rng)
        deltas, cosines = measure_result(result, config)
        assert all(d >= 0 for d in deltas)
        assert all(-1e-9 <= c <= 1.0 + 1e-9 for c in cosines)

    def test_full_selection_has_zero_loss(self, instance, config):
        """Selecting every review reproduces tau exactly (Delta = 0)."""
        from repro.core.selection import SelectionResult

        selections = tuple(
            tuple(range(len(reviews))) for reviews in instance.reviews
        )
        result = SelectionResult(
            instance=instance, selections=selections, algorithm="all"
        )
        deltas, cosines = measure_result(result, config)
        assert all(d == pytest.approx(0.0) for d in deltas)
        assert all(c == pytest.approx(1.0) for c in cosines)


class TestCurve:
    def test_budgets_and_monotone_trend(self, instances, config):
        selector = make_selector("CompaReSetS+")
        points = information_loss_curve(
            instances[:3], selector, config, budgets=(2, 8)
        )
        assert [p.max_reviews for p in points] == [2, 8]
        # More budget -> (weakly) less target-item loss, more cosine.
        assert points[1].target_delta <= points[0].target_delta + 0.05
        assert points[1].target_cosine >= points[0].target_cosine - 0.05

    def test_values_finite(self, instances, config):
        selector = make_selector("CompaReSetS+")
        points = information_loss_curve(instances[:2], selector, config, budgets=(3,))
        point = points[0]
        for value in (
            point.target_delta,
            point.target_cosine,
            point.all_items_delta,
            point.all_items_cosine,
        ):
            assert value == value  # not NaN
            assert value >= 0
