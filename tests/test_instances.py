"""Tests for comparison-instance extraction and restriction."""

import pytest

from repro.data.corpus import Corpus
from repro.data.instances import ComparisonInstance, build_instance, build_instances
from repro.data.models import Product
from tests.conftest import make_review


def corpus_with_chain() -> Corpus:
    products = [
        Product(product_id="p1", title="A", category="C", also_bought=("p2", "p3", "p4")),
        Product(product_id="p2", title="B", category="C", also_bought=("p1",)),
        Product(product_id="p3", title="C", category="C"),
        Product(product_id="p4", title="D", category="C"),
    ]
    reviews = []
    counts = {"p1": 3, "p2": 2, "p3": 1, "p4": 0}
    serial = 0
    for pid, count in counts.items():
        for _ in range(count):
            serial += 1
            reviews.append(make_review(f"r{serial}", pid, [("battery", 1)]))
    return Corpus("chain", products, reviews)


class TestBuildInstance:
    def test_filters_by_min_reviews(self):
        corpus = corpus_with_chain()
        instance = build_instance(corpus, "p1", min_reviews=2)
        assert instance is not None
        # p3 (1 review) and p4 (0 reviews) are dropped.
        assert [p.product_id for p in instance.products] == ["p1", "p2"]

    def test_none_when_target_lacks_reviews(self):
        corpus = corpus_with_chain()
        assert build_instance(corpus, "p4", min_reviews=1) is None

    def test_none_when_no_comparatives_survive(self):
        corpus = corpus_with_chain()
        assert build_instance(corpus, "p3", min_reviews=1) is None  # empty also_bought

    def test_max_comparisons_truncates(self):
        corpus = corpus_with_chain()
        instance = build_instance(corpus, "p1", max_comparisons=1, min_reviews=1)
        assert instance.num_items == 2

    def test_reviews_attached_to_right_products(self):
        corpus = corpus_with_chain()
        instance = build_instance(corpus, "p1", min_reviews=1)
        for product, review_set in zip(instance.products, instance.reviews):
            for review in review_set:
                assert review.product_id == product.product_id


class TestBuildInstances:
    def test_max_instances(self):
        corpus = corpus_with_chain()
        assert len(list(build_instances(corpus, max_instances=1, min_reviews=1))) == 1

    def test_yields_only_viable_targets(self):
        corpus = corpus_with_chain()
        targets = [
            inst.target.product_id for inst in build_instances(corpus, min_reviews=1)
        ]
        assert targets == ["p1", "p2"]


class TestComparisonInstance:
    def test_properties(self, instance):
        assert instance.target is instance.products[0]
        assert len(instance.comparatives) == instance.num_items - 1

    def test_mismatched_lengths_rejected(self):
        p = Product(product_id="p1", title="A", category="C")
        with pytest.raises(ValueError, match="review sets"):
            ComparisonInstance(products=(p,), reviews=())

    def test_duplicate_products_rejected(self):
        p = Product(product_id="p1", title="A", category="C")
        with pytest.raises(ValueError, match="duplicate product"):
            ComparisonInstance(products=(p, p), reviews=((), ()))

    def test_wrong_review_owner_rejected(self):
        p1 = Product(product_id="p1", title="A", category="C")
        foreign = make_review("r1", "p999", [])
        with pytest.raises(ValueError, match="belongs to"):
            ComparisonInstance(products=(p1,), reviews=((foreign,),))

    def test_aspect_vocabulary(self, paper_example_instance):
        assert paper_example_instance.aspect_vocabulary() == ["battery", "lens", "quality"]

    def test_restricted_to(self, instance):
        ids = [p.product_id for p in instance.products]
        sub = instance.restricted_to([ids[0], ids[2]])
        assert sub.num_items == 2
        assert sub.target.product_id == ids[0]
        assert sub.reviews[1] == instance.reviews[2]

    def test_restricted_to_requires_target_first(self, instance):
        ids = [p.product_id for p in instance.products]
        with pytest.raises(ValueError, match="target"):
            instance.restricted_to([ids[1], ids[0]])

    def test_restricted_to_unknown_product(self, instance):
        with pytest.raises(ValueError, match="unknown products"):
            instance.restricted_to([instance.target.product_id, "ghost"])
