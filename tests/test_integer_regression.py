"""Tests for the Integer-Regression machinery: dedup, NOMP, rounding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.integer_regression import (
    counts_to_selection,
    deduplicate_columns,
    integer_regression_select,
    largest_remainder_round,
    nomp,
    nomp_path,
    round_to_counts,
)


class TestDeduplicateColumns:
    def test_groups_identical_columns(self):
        matrix = np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        result = deduplicate_columns(matrix)
        assert result.groups == ((0, 1), (2,))
        assert result.matrix.shape == (2, 2)
        np.testing.assert_array_equal(result.capacities, [2, 1])

    def test_no_duplicates(self):
        matrix = np.eye(3)
        result = deduplicate_columns(matrix)
        assert len(result.groups) == 3

    def test_empty_matrix(self):
        result = deduplicate_columns(np.zeros((4, 0)))
        assert result.groups == ()
        assert result.matrix.shape == (4, 0)

    def test_float_noise_merged(self):
        matrix = np.array([[1.0, 1.0 + 1e-15]])
        assert len(deduplicate_columns(matrix).groups) == 1

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            deduplicate_columns(np.zeros(3))

    def test_signed_zero_columns_merge(self):
        """-0.0 and +0.0 round to different byte patterns but are the same
        column; regression test for the signed-zero key split."""
        matrix = np.array([[-1e-15, 1e-15, 0.0], [1.0, 1.0, 1.0]])
        result = deduplicate_columns(matrix)
        assert result.groups == ((0, 1, 2),)

    def test_zero_row_matrix_single_group(self):
        result = deduplicate_columns(np.zeros((0, 4)))
        assert result.groups == ((0, 1, 2, 3),)
        assert result.matrix.shape == (0, 1)

    def test_first_occurrence_order_preserved(self):
        matrix = np.array(
            [[3.0, 1.0, 3.0, 2.0, 1.0], [0.0, 1.0, 0.0, 2.0, 1.0]]
        )
        result = deduplicate_columns(matrix)
        assert result.groups == ((0, 2), (1, 4), (3,))
        np.testing.assert_array_equal(result.matrix, matrix[:, [0, 1, 3]])

    @given(
        st.integers(1, 6),
        st.integers(0, 24),
        st.integers(0, 10**6),
    )
    @settings(max_examples=60)
    def test_matches_bytes_key_reference(self, rows, cols, seed):
        """The vectorised grouping equals the original dict-of-bytes walk."""
        rng = np.random.default_rng(seed)
        # Low-cardinality values force plenty of duplicate columns.
        matrix = rng.choice([0.0, 0.5, 1.0], size=(rows, cols))
        result = deduplicate_columns(matrix)

        reference: dict[bytes, list[int]] = {}
        order: list[bytes] = []
        rounded = np.round(matrix, 12) + 0.0
        for column in range(cols):
            key = rounded[:, column].tobytes()
            if key not in reference:
                reference[key] = []
                order.append(key)
            reference[key].append(column)
        assert result.groups == tuple(tuple(reference[key]) for key in order)
        if result.groups:
            np.testing.assert_array_equal(
                result.matrix,
                np.column_stack([matrix[:, g[0]] for g in result.groups]),
            )


class TestNomp:
    def test_exact_recovery_of_sparse_combination(self):
        rng = np.random.default_rng(0)
        matrix = rng.uniform(0, 1, (20, 10))
        true_x = np.zeros(10)
        true_x[[2, 7]] = [1.5, 0.5]
        target = matrix @ true_x
        x = nomp(matrix, target, max_atoms=2)
        np.testing.assert_allclose(matrix @ x, target, atol=1e-8)

    def test_respects_sparsity_budget(self):
        rng = np.random.default_rng(1)
        matrix = rng.uniform(0, 1, (8, 12))
        target = rng.uniform(0, 1, 8)
        x = nomp(matrix, target, max_atoms=3)
        assert np.count_nonzero(x) <= 3

    def test_non_negative(self):
        rng = np.random.default_rng(2)
        matrix = rng.uniform(-1, 1, (6, 9))
        target = rng.uniform(-1, 1, 6)
        assert (nomp(matrix, target, 4) >= 0).all()

    def test_zero_columns(self):
        assert nomp(np.zeros((3, 0)), np.ones(3), 2).shape == (0,)

    def test_zero_budget(self):
        assert not nomp(np.ones((3, 3)), np.ones(3), 0).any()

    def test_orthogonal_target_yields_empty(self):
        # target negatively correlated with every column -> nothing picked
        matrix = np.ones((3, 2))
        target = -np.ones(3)
        assert not nomp(matrix, target, 2).any()

    def test_path_prefix_property(self):
        """nomp(budget=l) equals the l-th point of the budget-m path."""
        rng = np.random.default_rng(7)
        matrix = rng.uniform(0, 1, (12, 9))
        target = rng.uniform(0, 1, 12)
        path = nomp_path(matrix, target, 5)
        for sparsity in range(1, len(path) + 1):
            np.testing.assert_allclose(
                nomp(matrix, target, sparsity), path[sparsity - 1]
            )

    def test_path_support_grows_by_one(self):
        rng = np.random.default_rng(8)
        matrix = rng.uniform(0, 1, (10, 8))
        target = rng.uniform(0, 1, 10)
        path = nomp_path(matrix, target, 6)
        supports = [set(np.flatnonzero(x > 0)) for x in path]
        for previous, current in zip(supports, supports[1:]):
            # NNLS re-fits may zero out an earlier atom, but the selected
            # atom set can never shrink below the previous support size.
            assert len(current) <= len(previous) + 1

    def test_path_empty_for_zero_columns(self):
        assert nomp_path(np.zeros((3, 0)), np.ones(3), 4) == []

    def test_residual_decreases_with_budget(self):
        rng = np.random.default_rng(3)
        matrix = rng.uniform(0, 1, (15, 10))
        target = rng.uniform(0, 1, 15)
        errors = []
        for budget in (1, 3, 5):
            x = nomp(matrix, target, budget)
            errors.append(float(np.linalg.norm(matrix @ x - target)))
        assert errors[0] >= errors[1] >= errors[2]


class TestLargestRemainderRound:
    def test_basic_apportionment(self):
        result = largest_remainder_round(
            np.array([1.6, 1.4, 0.0]), np.array([5, 5, 5]), total=3
        )
        np.testing.assert_array_equal(result, [2, 1, 0])

    def test_respects_capacities(self):
        result = largest_remainder_round(
            np.array([3.0, 0.0]), np.array([1, 5]), total=3
        )
        assert result[0] <= 1
        assert result.sum() == 3  # overflow routed to slack entries

    def test_negative_ideal_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_round(np.array([-1.0]), np.array([2]), 1)

    @given(
        st.lists(st.floats(0, 5, allow_nan=False), min_size=1, max_size=8),
        st.integers(0, 10),
    )
    def test_invariants(self, ideal, total):
        ideal_array = np.array(ideal)
        capacities = np.full(len(ideal), 3)
        result = largest_remainder_round(ideal_array, capacities, total)
        assert (result >= 0).all()
        assert (result <= capacities).all()
        assert result.sum() <= max(total, 0) or result.sum() <= capacities.sum()
        # When slack allows and total is feasible, the full total is placed.
        if total <= capacities.sum():
            assert result.sum() == min(total, capacities.sum()) or result.sum() >= min(
                int(np.floor(ideal_array.sum())), total
            )


class TestRoundToCounts:
    def test_zero_x(self):
        assert not round_to_counts(np.zeros(3), np.ones(3, dtype=int), 5).any()

    def test_simple_proportions(self):
        x = np.array([2.0, 1.0, 0.0])
        counts = round_to_counts(x, np.array([5, 5, 5]), max_total=3)
        np.testing.assert_array_equal(counts, [2, 1, 0])

    def test_capacity_capped(self):
        x = np.array([1.0, 0.0])
        counts = round_to_counts(x, np.array([1, 4]), max_total=4)
        assert counts[0] <= 1

    def test_total_bounded(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 1, 6)
        counts = round_to_counts(x, np.full(6, 10), max_total=4)
        assert counts.sum() <= 4

    @given(
        st.lists(st.floats(0, 2, allow_nan=False), min_size=1, max_size=8),
        st.integers(1, 8),
        st.integers(1, 4),
    )
    @settings(max_examples=80)
    def test_matches_per_total_reference(self, x_values, max_total, cap):
        """The batched-argsort rewrite returns exactly what the original
        per-total largest_remainder_round loop returned."""
        x = np.array(x_values)
        capacities = np.full(len(x), cap)
        mass = float(np.abs(x).sum())
        expected = np.zeros(len(x), dtype=int)
        if mass > 0.0:
            normalised = x / mass
            best_gap = np.inf
            for s in range(1, max_total + 1):
                counts = largest_remainder_round(normalised * s, capacities, s)
                count_sum = int(counts.sum())
                if count_sum == 0:
                    continue
                gap = float(np.abs(counts / count_sum - normalised).sum())
                if gap < best_gap - 1e-12:
                    best_gap = gap
                    expected = counts
        np.testing.assert_array_equal(
            round_to_counts(x, capacities, max_total), expected
        )

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=6),
        st.integers(1, 6),
    )
    @settings(max_examples=50)
    def test_feasibility(self, x_values, max_total):
        x = np.array(x_values)
        capacities = np.full(len(x), 2)
        counts = round_to_counts(x, capacities, max_total)
        assert (counts >= 0).all()
        assert (counts <= capacities).all()
        assert counts.sum() <= max_total


class TestCountsToSelection:
    def test_maps_back_in_group_order(self):
        selection = counts_to_selection(
            np.array([2, 0, 1]), [(0, 3), (1,), (2, 4)]
        )
        assert selection == (0, 2, 3)

    def test_over_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            counts_to_selection(np.array([2]), [(0,)])


class TestIntegerRegressionSelect:
    def _perfect_instance(self):
        """Columns where a known subset reproduces the target exactly."""
        columns = np.array(
            [
                [1.0, 0.0, 1.0, 0.0],
                [0.0, 1.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        target = columns[:, 0] + columns[:, 1]  # = columns 0+1 (also column 2)
        return columns, target

    def test_finds_low_objective_selection(self):
        columns, target = self._perfect_instance()

        def evaluate(selection):
            achieved = columns[:, list(selection)].sum(axis=1) if selection else np.zeros(3)
            return float(((achieved - target) ** 2).sum())

        result = integer_regression_select(columns, target, max_reviews=2, evaluate=evaluate)
        assert result.objective == pytest.approx(0.0)
        assert len(result.selected) <= 2

    def test_respects_max_reviews(self):
        rng = np.random.default_rng(5)
        columns = rng.uniform(0, 1, (6, 10))
        target = rng.uniform(0, 2, 6)

        def evaluate(selection):
            achieved = columns[:, list(selection)].sum(axis=1) if selection else np.zeros(6)
            return float(((achieved - target) ** 2).sum())

        result = integer_regression_select(columns, target, max_reviews=3, evaluate=evaluate)
        assert len(result.selected) <= 3

    def test_allow_empty_competes(self):
        columns = np.ones((2, 3))
        target = np.zeros(2)

        def evaluate(selection):
            achieved = columns[:, list(selection)].sum(axis=1) if selection else np.zeros(2)
            return float(((achieved - target) ** 2).sum())

        # Zero target: empty wins when allowed...
        allowed = integer_regression_select(columns, target, 2, evaluate, allow_empty=True)
        assert allowed.selected == ()
        # ...and also when not allowed, because NOMP finds no positive atom.
        forced = integer_regression_select(columns, target, 2, evaluate, allow_empty=False)
        assert forced.selected == ()

    def test_prefers_non_empty_when_disallowed(self):
        columns = np.array([[1.0, 0.2]])
        target = np.array([0.1])  # closest to empty, but empty is disallowed

        def evaluate(selection):
            achieved = columns[:, list(selection)].sum(axis=1) if selection else np.zeros(1)
            return float(((achieved - target) ** 2).sum())

        result = integer_regression_select(columns, target, 1, evaluate, allow_empty=False)
        assert result.selected  # non-empty preferred

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            integer_regression_select(np.ones((2, 2)), np.ones(3), 1, lambda s: 0.0)

    def test_duplicate_columns_select_distinct_reviews(self):
        """Duplicate review groups expand to distinct review indices.

        Two identical [1,0] reviews plus one [0,1] review; the target
        proportion 2:1 requires selecting both duplicates.  The evaluator
        is scale-invariant (L1-normalised) like the real pi/phi vectors,
        since the rounding criterion itself is normalisation-based.
        """
        columns = np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        target = np.array([2 / 3, 1 / 3])

        def evaluate(selection):
            if not selection:
                return float((target**2).sum())
            achieved = columns[:, list(selection)].sum(axis=1)
            achieved = achieved / achieved.sum()
            return float(((achieved - target) ** 2).sum())

        result = integer_regression_select(columns, target, 3, evaluate)
        assert len(set(result.selected)) == len(result.selected)
        assert result.objective == pytest.approx(0.0)
        assert set(result.selected) == {0, 1, 2}
