"""Integration tests: the full pipeline across module boundaries."""

from dataclasses import replace

import numpy as np
import pytest

from repro import (
    SelectionConfig,
    build_instances,
    build_item_graph,
    generate_corpus,
    load_corpus,
    make_selector,
    save_corpus,
    solve_greedy,
    solve_ilp,
)
from repro.data.corpus import Corpus
from repro.data.synthetic import default_profiles, surface_stem_aliases
from repro.eval.alignment import among_items_alignment, mean_alignment
from repro.text.aspects import mine_aspects
from repro.text.sentiment import agreement_with_ground_truth, annotate_corpus


class TestSelectThenNarrow:
    def test_full_flow(self, instance, config):
        result = make_selector("CompaReSetS+").select(instance, config)
        graph = build_item_graph(result, config)
        k = min(3, instance.num_items)
        greedy = solve_greedy(graph.weights, k)
        exact = solve_ilp(graph.weights, k, backend="bnb", time_limit=10)
        assert 0 in greedy.selected and 0 in exact.selected
        assert exact.weight >= greedy.weight - 1e-9

        kept = [0] + sorted(v for v in exact.selected if v != 0)
        narrowed = result.restricted_to_items(kept)
        assert narrowed.instance.num_items == k
        # The narrowed instance re-scores without error.
        scores = among_items_alignment(narrowed)
        assert scores.rouge_1 >= 0

    def test_serialisation_round_trip_preserves_selections(self, tmp_path, config):
        corpus = generate_corpus("Toy", scale=0.3, seed=2)
        path = tmp_path / "toy.jsonl"
        save_corpus(corpus, path)
        reloaded = load_corpus(path)

        original_instance = next(
            iter(build_instances(corpus, max_comparisons=5, min_reviews=3))
        )
        reloaded_instance = next(
            iter(build_instances(reloaded, max_comparisons=5, min_reviews=3))
        )
        selector = make_selector("CompaReSetS")
        assert (
            selector.select(original_instance, config).selections
            == selector.select(reloaded_instance, config).selections
        )


class TestTextPipelineIntoSelection:
    def test_raw_text_to_selection(self):
        """Strip annotations, re-derive them from text, and select."""
        truth = generate_corpus("Cellphone", scale=0.3, seed=4)
        stripped = Corpus(
            name=truth.name,
            products=truth.products,
            reviews=[replace(r, mentions=()) for r in truth.reviews],
        )
        aliases = surface_stem_aliases(default_profiles(0.3)["Cellphone"])
        vocabulary = mine_aspects(
            stripped.reviews,
            candidate_pool=200,
            keep=80,
            concept_filter=frozenset(aliases),
        )
        annotated = annotate_corpus(stripped, vocabulary)
        agreement = agreement_with_ground_truth(
            annotated.reviews, truth.reviews, aliases
        )
        assert agreement > 0.6  # concept-filtered extraction is accurate

        instance = next(
            iter(build_instances(annotated, max_comparisons=5, min_reviews=3))
        )
        config = SelectionConfig(max_reviews=3, mu=0.01)
        result = make_selector("CompaReSetS+").select(instance, config)
        assert any(result.selections)


class TestPaperShapeSmall:
    """The cheapest headline shape at test scale: CRS/CompaReSetS >> Random."""

    def test_informed_selectors_beat_random(self, instances):
        config = SelectionConfig(max_reviews=3, mu=0.01)
        scores = {}
        for name in ("Random", "CRS", "CompaReSetS"):
            selector = make_selector(name)
            rng = np.random.default_rng(0)
            results = [selector.select(inst, config, rng=rng) for inst in instances]
            scores[name] = mean_alignment(
                [among_items_alignment(r) for r in results]
            ).rouge_1
        assert scores["CRS"] > scores["Random"]
        assert scores["CompaReSetS"] > scores["Random"]
