"""Tests for JSONL corpus serialisation."""

import json

import pytest

from repro.data.io import load_corpus, save_corpus
from repro.data.synthetic import generate_corpus


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        original = generate_corpus("Toy", scale=0.25, seed=3)
        path = tmp_path / "toy.jsonl"
        save_corpus(original, path)
        loaded = load_corpus(path)

        assert loaded.name == original.name
        assert len(loaded.products) == len(original.products)
        assert len(loaded.reviews) == len(original.reviews)
        for a, b in zip(original.products, loaded.products):
            assert a == b
        for a, b in zip(original.reviews, loaded.reviews):
            assert a == b

    def test_header_written_first(self, tmp_path):
        corpus = generate_corpus("Toy", scale=0.25, seed=3)
        path = tmp_path / "toy.jsonl"
        save_corpus(corpus, path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "header"
        assert first["name"] == "Toy"


class TestErrors:
    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "version": 1}\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_corpus(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            load_corpus(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            load_corpus(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text(
            '{"kind": "header", "version": 1, "name": "X"}\n'
            "\n"
            '{"kind": "product", "product_id": "p1", "title": "T", "category": "C"}\n'
        )
        corpus = load_corpus(path)
        assert corpus.name == "X"
        assert len(corpus.products) == 1

    def test_name_falls_back_to_stem(self, tmp_path):
        path = tmp_path / "fallback.jsonl"
        path.write_text(
            '{"kind": "product", "product_id": "p1", "title": "T", "category": "C"}\n'
        )
        assert load_corpus(path).name == "fallback"
