"""Tests for the opinion lexicon and the stopword list."""

from repro.text.lexicon import (
    NEGATIVE_WORDS,
    POSITIVE_WORDS,
    intensity,
    is_negation,
    is_opinion_word,
    polarity,
)
from repro.text.stopwords import STOPWORDS, is_stopword


class TestPolarity:
    def test_positive(self):
        assert polarity("great") == 1
        assert polarity("sturdy") == 1

    def test_negative(self):
        assert polarity("flimsy") == -1
        assert polarity("broken") == -1

    def test_neutral(self):
        assert polarity("table") == 0

    def test_case_insensitive(self):
        assert polarity("GREAT") == 1

    def test_lexicons_disjoint(self):
        assert not (POSITIVE_WORDS & NEGATIVE_WORDS)

    def test_is_opinion_word(self):
        assert is_opinion_word("awful")
        assert not is_opinion_word("battery")


class TestNegation:
    def test_common_negations(self):
        for token in ("not", "never", "no", "don't", "isn't"):
            assert is_negation(token), token

    def test_non_negation(self):
        assert not is_negation("very")

    def test_case_insensitive(self):
        assert is_negation("NOT")


class TestIntensity:
    def test_amplifier(self):
        assert intensity("very") > 1.0
        assert intensity("extremely") >= intensity("very")

    def test_downtoner(self):
        assert intensity("slightly") < 1.0

    def test_default(self):
        assert intensity("battery") == 1.0


class TestStopwords:
    def test_common_stopwords(self):
        for token in ("the", "and", "is", "of", "this"):
            assert is_stopword(token), token

    def test_content_words_not_stopwords(self):
        for token in ("battery", "charger", "puzzle", "sandal"):
            assert not is_stopword(token), token

    def test_opinion_words_not_stopwords(self):
        """Opinion words must survive stopword filtering for the extractor."""
        assert not (POSITIVE_WORDS & STOPWORDS)
        assert not (NEGATIVE_WORDS & STOPWORDS)

    def test_case_insensitive(self):
        assert is_stopword("The")
