"""Tests for the simulated LLM-judge baseline."""

import numpy as np
import pytest

from repro.core.problem import SelectionConfig
from repro.core.selection import make_selector
from repro.llm_sim import LlmJudgeSelector, NoisyRougeJudge
from tests.conftest import make_review


class TestNoisyRougeJudge:
    def test_identical_reviews_score_high(self):
        judge = NoisyRougeJudge(noise_sd=0.0)
        review = make_review("r1", "p1", [("a", 1)], text="the battery is great")
        assert judge.compare(review, review) == pytest.approx(1.0)

    def test_disjoint_reviews_score_low(self):
        judge = NoisyRougeJudge(noise_sd=0.0)
        a = make_review("r1", "p1", [], text="alpha beta gamma")
        b = make_review("r2", "p2", [], text="delta epsilon zeta")
        assert judge.compare(a, b) == pytest.approx(0.0)

    def test_calls_counted_and_cached(self):
        judge = NoisyRougeJudge()
        a = make_review("r1", "p1", [], text="one two")
        b = make_review("r2", "p2", [], text="one three")
        first = judge.compare(a, b)
        second = judge.compare(b, a)  # symmetric cache key
        assert judge.calls == 1
        assert first == second

    def test_flip_probability_one_is_random(self):
        judge = NoisyRougeJudge(flip_probability=1.0, seed=5)
        a = make_review("r1", "p1", [], text="same text")
        b = make_review("r2", "p2", [], text="same text")
        assert judge.compare(a, b) != pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisyRougeJudge(noise_sd=-1.0)
        with pytest.raises(ValueError):
            NoisyRougeJudge(flip_probability=2.0)


class TestLlmJudgeSelector:
    def test_registered(self):
        assert make_selector("LLM-Judge").name == "LLM-Judge"

    def test_budget_and_validity(self, instance, config):
        selector = LlmJudgeSelector(NoisyRougeJudge(seed=1))
        result = selector.select(instance, config)
        for selection, reviews in zip(result.selections, instance.reviews):
            assert len(selection) <= config.max_reviews
            assert all(0 <= j < len(reviews) for j in selection)

    def test_judgment_budget_is_quadraticish(self, instance):
        """Calls scale like (#target kept) x (#comparative reviews)."""
        judge = NoisyRougeJudge(seed=2)
        selector = LlmJudgeSelector(judge)
        config = SelectionConfig(max_reviews=3)
        selector.select(instance, config)
        comparative_reviews = sum(len(r) for r in instance.reviews[1:])
        kept = min(3, len(instance.reviews[0]))
        assert judge.calls == kept * comparative_reviews

    def test_deterministic_given_seed(self, instance, config):
        a = LlmJudgeSelector(NoisyRougeJudge(seed=3)).select(instance, config)
        b = LlmJudgeSelector(NoisyRougeJudge(seed=3)).select(instance, config)
        assert a.selections == b.selections

    def test_hallucinating_judge_degrades_alignment(self, instances):
        """Flipped judgments hurt ROUGE alignment vs a faithful judge."""
        from repro.eval.alignment import mean_alignment, target_vs_comparative_alignment

        config = SelectionConfig(max_reviews=3)

        def score(flip):
            results = [
                LlmJudgeSelector(
                    NoisyRougeJudge(flip_probability=flip, seed=4)
                ).select(inst, config)
                for inst in instances
            ]
            return mean_alignment(
                [target_vs_comparative_alignment(r) for r in results]
            ).rouge_1

        assert score(0.0) > score(1.0)
