"""Tests for the swap-based TargetHkS local search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.local_search import improve_by_swaps, solve_greedy_with_local_search
from repro.graph.target_hks import HksSolution, solve_brute_force, solve_greedy
from tests.test_ilp import random_weights


class TestImproveBySwaps:
    def test_never_degrades(self):
        for seed in range(8):
            weights = random_weights(10, seed)
            greedy = solve_greedy(weights, 4)
            improved = improve_by_swaps(weights, greedy)
            assert improved.weight >= greedy.weight - 1e-9

    def test_keeps_target(self):
        weights = random_weights(9, 3)
        improved = improve_by_swaps(weights, solve_greedy(weights, 4, target=2), target=2)
        assert 2 in improved.selected
        assert len(improved.selected) == 4

    def test_requires_target_in_solution(self):
        weights = random_weights(5, 0)
        bogus = HksSolution(selected=(1, 2), weight=0.0, algorithm="x")
        with pytest.raises(ValueError, match="target"):
            improve_by_swaps(weights, bogus, target=0)

    def test_fixes_a_deliberately_bad_start(self):
        weights = random_weights(10, 1)
        worst = min(
            (
                HksSolution(
                    selected=(0, a, b),
                    weight=float(weights[0, a] + weights[0, b] + weights[a, b]),
                    algorithm="bad",
                )
                for a in range(1, 9)
                for b in range(a + 1, 10)
            ),
            key=lambda s: s.weight,
        )
        improved = improve_by_swaps(weights, worst)
        optimum = solve_brute_force(weights, 3)
        assert improved.weight > worst.weight
        # 1-swap local optimum is near the true optimum on these graphs.
        assert improved.weight >= 0.9 * optimum.weight

    def test_weight_reported_consistently(self):
        weights = random_weights(8, 5)
        improved = improve_by_swaps(weights, solve_greedy(weights, 4))
        from repro.graph.ilp import subset_weight

        assert improved.weight == pytest.approx(
            subset_weight(weights, improved.selected)
        )


class TestGreedyWithLocalSearch:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5000), st.integers(5, 9), st.integers(2, 4))
    def test_at_least_greedy_never_above_optimum(self, seed, n, k):
        k = min(k, n)
        weights = random_weights(n, seed)
        greedy = solve_greedy(weights, k)
        refined = solve_greedy_with_local_search(weights, k)
        optimum = solve_brute_force(weights, k)
        assert greedy.weight - 1e-9 <= refined.weight <= optimum.weight + 1e-9

    def test_algorithm_label(self):
        weights = random_weights(6, 0)
        refined = solve_greedy_with_local_search(weights, 3)
        assert refined.algorithm.endswith("+LocalSearch")
