"""Tests for the data model: Review, Product, AspectMention."""

import pytest

from repro.data.models import AspectMention, Product, Review
from tests.conftest import make_review


class TestAspectMention:
    def test_valid(self):
        mention = AspectMention(aspect="battery", sentiment=1)
        assert mention.strength == 1.0

    @pytest.mark.parametrize("sentiment", [-2, 2, 5])
    def test_invalid_sentiment(self, sentiment):
        with pytest.raises(ValueError, match="sentiment"):
            AspectMention(aspect="battery", sentiment=sentiment)

    def test_negative_strength(self):
        with pytest.raises(ValueError, match="strength"):
            AspectMention(aspect="battery", sentiment=1, strength=-0.5)

    def test_frozen(self):
        mention = AspectMention(aspect="battery", sentiment=0)
        with pytest.raises(AttributeError):
            mention.sentiment = 1


class TestReview:
    def test_aspects_property(self):
        review = make_review("r1", "p1", [("battery", 1), ("screen", -1), ("battery", -1)])
        assert review.aspects == {"battery", "screen"}

    def test_sentiment_for_simple(self):
        review = make_review("r1", "p1", [("battery", 1)])
        assert review.sentiment_for("battery") == 1
        assert review.sentiment_for("screen") == 0

    def test_sentiment_for_mixed_mentions(self):
        review = Review(
            review_id="r1",
            product_id="p1",
            reviewer_id="u1",
            rating=3.0,
            text="mixed",
            mentions=(
                AspectMention("battery", 1, strength=0.5),
                AspectMention("battery", -1, strength=2.0),
            ),
        )
        assert review.sentiment_for("battery") == -1
        assert review.signed_strength_for("battery") == pytest.approx(-1.5)

    def test_invalid_rating(self):
        with pytest.raises(ValueError, match="rating"):
            make_review("r1", "p1", [], rating=6.0)

    def test_empty_review_id(self):
        with pytest.raises(ValueError, match="review_id"):
            Review(review_id="", product_id="p", reviewer_id="u", rating=3.0, text="x")

    def test_neutral_mention_sentiment(self):
        review = make_review("r1", "p1", [("battery", 0)])
        assert review.sentiment_for("battery") == 0


class TestProduct:
    def test_valid(self):
        product = Product(product_id="p1", title="Phone", category="Cellphone", also_bought=("p2",))
        assert product.also_bought == ("p2",)

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError, match="own also_bought"):
            Product(product_id="p1", title="X", category="C", also_bought=("p1",))

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="product_id"):
            Product(product_id="", title="X", category="C")
