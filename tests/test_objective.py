"""Tests for the exact objective evaluators (Eq. 1, Eq. 3, Eq. 5, d_ij)."""

import numpy as np
import pytest

from repro.core.distance import squared_l2
from repro.core.objective import (
    compare_sets_objective,
    compare_sets_plus_objective,
    item_objective,
    pairwise_item_distance,
)
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space
from repro.core.baselines import RandomSelector


@pytest.fixture()
def random_result(instance, config, rng):
    return RandomSelector().select(instance, config, rng=rng)


class TestItemObjective:
    def test_zero_when_selection_reproduces_targets(self, paper_example_instance):
        config = SelectionConfig(max_reviews=3)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)
        subset = [reviews[4], reviews[5], reviews[6]]
        assert item_objective(space, subset, tau, gamma, 1.0) == pytest.approx(0.0)

    def test_lambda_scaling(self, paper_example_instance):
        config = SelectionConfig(max_reviews=3)
        space = build_space(paper_example_instance, config)
        reviews = paper_example_instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)
        subset = [reviews[0]]
        base = item_objective(space, subset, tau, gamma, 0.0)
        scaled = item_objective(space, subset, tau, gamma, 2.0)
        phi = space.aspect_vector(subset)
        assert scaled == pytest.approx(base + 4.0 * squared_l2(gamma, phi))


class TestCompareSetsObjective:
    def test_decomposes_over_items(self, random_result, config):
        space = build_space(random_result.instance, config)
        gamma = space.aspect_vector(random_result.instance.reviews[0])
        manual = 0.0
        for i in range(random_result.instance.num_items):
            tau = space.opinion_vector(random_result.instance.reviews[i])
            manual += item_objective(
                space, list(random_result.selected_reviews(i)), tau, gamma, config.lam
            )
        assert compare_sets_objective(random_result, config) == pytest.approx(manual)


class TestCompareSetsPlusObjective:
    def test_mu_zero_equals_eq1(self, random_result, config):
        flat = config.with_(mu=0.0)
        assert compare_sets_plus_objective(random_result, flat) == pytest.approx(
            compare_sets_objective(random_result, flat)
        )

    def test_pairwise_term_added(self, random_result, config):
        space = build_space(random_result.instance, config)
        phis = [
            space.aspect_vector(random_result.selected_reviews(i))
            for i in range(random_result.instance.num_items)
        ]
        pairwise = sum(
            squared_l2(phis[i], phis[j])
            for i in range(len(phis) - 1)
            for j in range(i + 1, len(phis))
        )
        expected = compare_sets_objective(random_result, config) + config.mu**2 * pairwise
        assert compare_sets_plus_objective(random_result, config) == pytest.approx(expected)


class TestPairwiseItemDistance:
    def test_symmetric(self, random_result, config):
        space = build_space(random_result.instance, config)
        instance = random_result.instance
        gamma = space.aspect_vector(instance.reviews[0])
        tau_0 = space.opinion_vector(instance.reviews[0])
        tau_1 = space.opinion_vector(instance.reviews[1])
        s0 = random_result.selected_reviews(0)
        s1 = random_result.selected_reviews(1)
        d_01 = pairwise_item_distance(space, s0, s1, tau_0, tau_1, gamma, config)
        d_10 = pairwise_item_distance(space, s1, s0, tau_1, tau_0, gamma, config)
        assert d_01 == pytest.approx(d_10)

    def test_non_negative(self, random_result, config):
        space = build_space(random_result.instance, config)
        instance = random_result.instance
        gamma = space.aspect_vector(instance.reviews[0])
        taus = [space.opinion_vector(r) for r in instance.reviews]
        n = instance.num_items
        for i in range(n - 1):
            for j in range(i + 1, n):
                d = pairwise_item_distance(
                    space,
                    random_result.selected_reviews(i),
                    random_result.selected_reviews(j),
                    taus[i],
                    taus[j],
                    gamma,
                    config,
                )
                assert d >= 0.0
