"""Tests for the Table-5 solver-comparison aggregation."""

import pytest

from repro.core.baselines import RandomSelector
from repro.core.problem import SelectionConfig
from repro.eval.objective_ratio import compare_hks_solvers


@pytest.fixture()
def results(instances, config, rng):
    selector = RandomSelector()
    return [selector.select(inst, config, rng=rng) for inst in instances]


class TestCompareHksSolvers:
    def test_aggregates(self, results, config):
        comparison = compare_hks_solvers(
            results, config, k=3, time_limit=5.0, backend="bnb"
        )
        assert comparison.k == 3
        assert comparison.num_instances > 0
        assert 0 <= comparison.optimal_percent <= 100

    def test_greedy_never_better_than_exact_when_proven(self, results, config):
        comparison = compare_hks_solvers(
            results, config, k=3, time_limit=30.0, backend="bnb"
        )
        if comparison.optimal_percent == 100.0:
            assert comparison.greedy_ratio <= 1e-9

    def test_random_below_greedy(self, results, config):
        comparison = compare_hks_solvers(
            results, config, k=3, time_limit=5.0, backend="bnb"
        )
        assert comparison.random_ratio <= comparison.greedy_ratio + 1e-9

    def test_skips_small_instances(self, results, config):
        big_k = max(r.instance.num_items for r in results) + 1
        comparison = compare_hks_solvers(
            results, config, k=big_k, time_limit=5.0, backend="bnb"
        )
        assert comparison.num_instances == 0
        assert comparison.optimal_percent == 0.0

    def test_deterministic_given_seed(self, results, config):
        a = compare_hks_solvers(results, config, k=3, time_limit=5.0, backend="bnb", seed=1)
        b = compare_hks_solvers(results, config, k=3, time_limit=5.0, backend="bnb", seed=1)
        assert a.random_objective == b.random_objective
