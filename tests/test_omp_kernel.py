"""Equivalence harness: the Batch-OMP kernel vs the scipy-nnls reference.

The kernel's contract is *byte-identical selections* in exact mode: every
test here pits ``use_kernel=True`` (or the kernel primitives) against the
original reference path on randomised instances across all three opinion
schemes, plus the degenerate shapes the issue calls out (zero columns,
duplicate-heavy items, m exceeding the unique-column count).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compare_sets import CompareSetsSelector, select_for_item
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.integer_regression import deduplicate_columns, nomp_path
from repro.core.objective import item_objective
from repro.core.omp_kernel import (
    STAGES,
    CountsEvaluator,
    SolverArtifacts,
    StageTimer,
    batch_omp_path,
    solve_item,
)
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space
from repro.core.vectors import OpinionScheme
from repro.data.instances import ComparisonInstance
from repro.data.models import AspectMention, Product, Review

ASPECTS = ("battery", "screen", "camera", "price", "weight")


def random_instance(
    rng: np.random.Generator,
    num_items: int = 3,
    max_reviews: int = 8,
    duplicate_heavy: bool = False,
    mention_free_rate: float = 0.15,
) -> ComparisonInstance:
    """A small random instance; ``duplicate_heavy`` repeats mention sets."""
    products = tuple(
        Product(product_id=f"p{i}", title=f"P{i}", category="C")
        for i in range(num_items)
    )
    all_reviews = []
    counter = 0
    for i in range(num_items):
        count = int(rng.integers(1, max_reviews + 1))
        reviews = []
        archetypes: list[tuple[AspectMention, ...]] = []
        for _ in range(count):
            if duplicate_heavy and archetypes and rng.random() < 0.6:
                mentions = archetypes[int(rng.integers(len(archetypes)))]
            elif rng.random() < mention_free_rate:
                mentions = ()
            else:
                width = int(rng.integers(1, len(ASPECTS) + 1))
                chosen = rng.choice(len(ASPECTS), size=width, replace=False)
                mentions = tuple(
                    AspectMention(
                        aspect=ASPECTS[a],
                        sentiment=int(rng.integers(-1, 2)),
                        strength=float(rng.integers(0, 4)) / 2.0,
                    )
                    for a in sorted(chosen)
                )
                archetypes.append(mentions)
            counter += 1
            reviews.append(
                Review(
                    review_id=f"r{counter}",
                    product_id=f"p{i}",
                    reviewer_id="u",
                    rating=4.0,
                    text="t",
                    mentions=mentions,
                )
            )
        all_reviews.append(tuple(reviews))
    return ComparisonInstance(products=products, reviews=tuple(all_reviews))


@pytest.mark.parametrize("scheme", list(OpinionScheme))
class TestSelectorEquivalence:
    """Kernel and reference selectors agree selection-for-selection."""

    def test_compare_sets_matches_reference(self, scheme):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            instance = random_instance(rng, duplicate_heavy=seed % 2 == 1)
            for m in (1, 3, 6):
                config = SelectionConfig(max_reviews=m, lam=1.0, mu=0.1, scheme=scheme)
                reference = CompareSetsSelector(use_kernel=False).select(
                    instance, config
                )
                kernel = CompareSetsSelector(use_kernel=True).select(instance, config)
                assert kernel.selections == reference.selections, (seed, m)

    def test_compare_sets_plus_matches_reference(self, scheme):
        for seed in range(4):
            rng = np.random.default_rng(100 + seed)
            instance = random_instance(rng, duplicate_heavy=seed % 2 == 1)
            for variant in ("literal", "weighted"):
                config = SelectionConfig(
                    max_reviews=3, lam=1.0, mu=0.1, scheme=scheme, sweeps=2
                )
                reference = CompareSetsPlusSelector(
                    variant, use_kernel=False
                ).select(instance, config)
                kernel = CompareSetsPlusSelector(variant, use_kernel=True).select(
                    instance, config
                )
                assert kernel.selections == reference.selections, (seed, variant)

    def test_non_default_lambda_mu(self, scheme):
        rng = np.random.default_rng(7)
        instance = random_instance(rng)
        config = SelectionConfig(
            max_reviews=3, lam=0.4, mu=0.9, scheme=scheme, sweeps=2
        )
        reference = CompareSetsPlusSelector(use_kernel=False).select(instance, config)
        kernel = CompareSetsPlusSelector(use_kernel=True).select(instance, config)
        assert kernel.selections == reference.selections


class TestDegenerateShapes:
    def test_all_reviews_mention_free(self):
        """Zero incidence columns: both paths return the empty fallback."""
        rng = np.random.default_rng(0)
        instance = random_instance(rng, num_items=2, mention_free_rate=1.0)
        config = SelectionConfig(max_reviews=3)
        reference = CompareSetsSelector(use_kernel=False).select(instance, config)
        kernel = CompareSetsSelector(use_kernel=True).select(instance, config)
        assert kernel.selections == reference.selections
        assert all(selection == () for selection in kernel.selections)

    def test_duplicate_heavy_budget_exceeds_unique_columns(self):
        """m larger than the number of unique columns (capacity-bound)."""
        for seed in range(4):
            rng = np.random.default_rng(200 + seed)
            instance = random_instance(rng, duplicate_heavy=True, max_reviews=6)
            config = SelectionConfig(max_reviews=10)
            reference = CompareSetsSelector(use_kernel=False).select(instance, config)
            kernel = CompareSetsSelector(use_kernel=True).select(instance, config)
            assert kernel.selections == reference.selections

    def test_single_review_items(self):
        rng = np.random.default_rng(3)
        instance = random_instance(rng, num_items=4, max_reviews=1)
        config = SelectionConfig(max_reviews=3, sweeps=2)
        reference = CompareSetsPlusSelector(use_kernel=False).select(instance, config)
        kernel = CompareSetsPlusSelector(use_kernel=True).select(instance, config)
        assert kernel.selections == reference.selections

    def test_single_item_instance_plus_runs_on_base_block(self):
        """With no other items the sync stack vanishes (sync_blocks=0)."""
        rng = np.random.default_rng(4)
        instance = random_instance(rng, num_items=1)
        config = SelectionConfig(max_reviews=3, sweeps=2)
        reference = CompareSetsPlusSelector(use_kernel=False).select(instance, config)
        kernel = CompareSetsPlusSelector(use_kernel=True).select(instance, config)
        assert kernel.selections == reference.selections


@st.composite
def pursuit_problem(draw):
    """A deduplicated incidence-like matrix, a target, and a budget."""
    rows = draw(st.integers(min_value=1, max_value=10))
    cols = draw(st.integers(min_value=1, max_value=10))
    cells = draw(
        st.lists(
            st.sampled_from([0.0, 0.5, 1.0]),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    matrix = np.array(cells).reshape(rows, cols)
    target = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
                min_size=rows,
                max_size=rows,
            )
        )
    )
    budget = draw(st.integers(min_value=1, max_value=6))
    return matrix, target, budget


class TestBatchOmpPath:
    @settings(max_examples=60, deadline=None)
    @given(pursuit_problem())
    def test_exact_mode_bitwise_matches_nomp_path(self, problem):
        matrix, target, budget = problem
        unique = deduplicate_columns(matrix).matrix
        reference = nomp_path(unique, target, budget)
        gram = unique.T @ unique
        b = unique.T @ target.astype(float)
        kernel = batch_omp_path(gram, b, budget, unique, target, exact=True)
        assert len(kernel) == len(reference)
        for ours, theirs in zip(kernel, reference):
            assert np.array_equal(ours, theirs)

    def test_empty_and_zero_budget(self):
        empty = np.zeros((3, 0))
        assert batch_omp_path(np.zeros((0, 0)), np.zeros(0), 3, empty, np.zeros(3)) == []
        one = np.ones((3, 1))
        gram = one.T @ one
        b = one.T @ np.ones(3)
        assert batch_omp_path(gram, b, 0, one, np.ones(3)) == []

    def test_rejects_non_square_gram(self):
        with pytest.raises(ValueError):
            batch_omp_path(np.zeros((2, 3)), np.zeros(3), 1, np.zeros((4, 3)), np.zeros(4))

    def test_fast_mode_stays_feasible(self):
        """exact=False may tie-break differently but must stay a valid NOMP
        path: non-negative coefficients, support growing one atom a step."""
        rng = np.random.default_rng(5)
        matrix = (rng.random((12, 9)) < 0.4).astype(float)
        unique = deduplicate_columns(matrix).matrix
        target = rng.random(12) * 2
        gram = unique.T @ unique
        b = unique.T @ target
        path = batch_omp_path(gram, b, 5, unique, target, exact=False)
        for step, x in enumerate(path):
            assert np.all(x >= 0)
            assert len(np.flatnonzero(x)) <= step + 1


class TestSolverArtifacts:
    def _item(self, seed=0, scheme=OpinionScheme.BINARY):
        rng = np.random.default_rng(seed)
        instance = random_instance(rng, num_items=1, max_reviews=8)
        config = SelectionConfig(max_reviews=3, lam=1.0, mu=0.1, scheme=scheme)
        space = build_space(instance, config)
        reviews = instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)
        return space, reviews, tau, gamma, config

    def test_reuse_across_budgets_matches_fresh(self):
        space, reviews, tau, gamma, config = self._item()
        shared = SolverArtifacts(space, reviews, config.lam)
        for m in (1, 2, 4):
            budget_config = config.with_(max_reviews=m)
            reused = solve_item(shared, tau, gamma, budget_config)
            fresh = solve_item(
                SolverArtifacts(space, reviews, config.lam), tau, gamma, budget_config
            )
            assert reused.selected == fresh.selected
            assert reused.objective == fresh.objective

    def test_plus_block_memoised_per_mu(self):
        space, reviews, tau, gamma, config = self._item()
        artifacts = SolverArtifacts(space, reviews, config.lam)
        block = artifacts.plus_block(0.1)
        assert artifacts.plus_block(0.1) is block
        assert artifacts.plus_block(0.5) is not block

    def test_select_for_item_rejects_foreign_artifacts(self):
        space, reviews, tau, gamma, config = self._item(seed=1)
        other_space, other_reviews, *_ = self._item(seed=2)
        foreign = SolverArtifacts(other_space, other_reviews, config.lam)
        with pytest.raises(ValueError, match="artifacts"):
            select_for_item(
                space, reviews, tau, gamma, config, artifacts=foreign
            )

    def test_counts_evaluator_matches_item_objective(self):
        for scheme in OpinionScheme:
            space, reviews, tau, gamma, config = self._item(seed=3, scheme=scheme)
            artifacts = SolverArtifacts(space, reviews, config.lam)
            block = artifacts.base_block()
            evaluator = CountsEvaluator(artifacts, block, tau, gamma, config.lam)
            rng = np.random.default_rng(9)
            for _ in range(10):
                size = int(rng.integers(0, min(4, len(reviews)) + 1))
                selection = tuple(
                    sorted(rng.choice(len(reviews), size=size, replace=False))
                )
                counts = block.counts_for(selection)
                expected = item_objective(
                    space, [reviews[j] for j in selection], tau, gamma, config.lam
                )
                assert evaluator.item_value(counts, selection) == expected


class TestStageTimings:
    def test_timer_accumulates_known_stages(self):
        timer = StageTimer()
        with timer.stage("dedup"):
            pass
        with timer.stage("pursuit"):
            pass
        millis = timer.as_millis()
        assert set(millis) == set(STAGES)
        assert all(value >= 0.0 for value in millis.values())

    def test_kernel_result_carries_timings(self):
        rng = np.random.default_rng(11)
        instance = random_instance(rng)
        config = SelectionConfig(max_reviews=3)
        kernel = CompareSetsSelector(use_kernel=True).select(instance, config)
        assert kernel.timings is not None
        assert set(kernel.timings) == set(STAGES)
        reference = CompareSetsSelector(use_kernel=False).select(instance, config)
        assert reference.timings is None

    def test_timings_do_not_affect_equality(self):
        rng = np.random.default_rng(12)
        instance = random_instance(rng)
        config = SelectionConfig(max_reviews=3)
        kernel = CompareSetsSelector(use_kernel=True).select(instance, config)
        reference = CompareSetsSelector(use_kernel=False).select(instance, config)
        assert kernel == reference
