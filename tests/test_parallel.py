"""Tests for the parallel instance runner."""

import pytest

from repro.core.problem import SelectionConfig
from repro.core.selection import make_selector
from repro.eval.parallel import select_parallel


class TestSelectParallel:
    def test_matches_sequential_for_deterministic_selector(self, instances, config):
        sequential = [
            make_selector("CompaReSetS").select(inst, config) for inst in instances[:4]
        ]
        parallel = select_parallel(
            "CompaReSetS", instances[:4], config, max_workers=2
        )
        assert [r.selections for r in parallel] == [r.selections for r in sequential]

    def test_order_preserved(self, instances, config):
        results = select_parallel("Random", instances[:4], config, max_workers=2)
        for result, instance in zip(results, instances[:4]):
            assert result.instance.target.product_id == instance.target.product_id

    def test_reproducible_across_worker_counts(self, instances, config):
        one = select_parallel("Random", instances[:4], config, max_workers=1, seed=3)
        two = select_parallel("Random", instances[:4], config, max_workers=2, seed=3)
        assert [r.selections for r in one] == [r.selections for r in two]

    def test_selector_kwargs_forwarded(self, instances, config):
        results = select_parallel(
            "CompaReSetS+",
            instances[:2],
            config,
            max_workers=1,
            selector_kwargs={"variant": "weighted"},
        )
        assert len(results) == 2

    def test_single_instance_runs_inline(self, instances, config):
        results = select_parallel("CRS", instances[:1], config)
        assert len(results) == 1

    def test_unknown_selector_raises(self, instances, config):
        with pytest.raises(ValueError, match="unknown selector"):
            select_parallel("Oracle", instances[:1], config)
