"""Tests for the parallel instance runner."""

import multiprocessing

import pytest

from repro.core.problem import SelectionConfig
from repro.core.selection import make_selector
from repro.eval import parallel
from repro.eval.parallel import select_parallel


class TestSelectParallel:
    def test_matches_sequential_for_deterministic_selector(self, instances, config):
        sequential = [
            make_selector("CompaReSetS").select(inst, config) for inst in instances[:4]
        ]
        parallel = select_parallel(
            "CompaReSetS", instances[:4], config, max_workers=2
        )
        assert [r.selections for r in parallel] == [r.selections for r in sequential]

    def test_order_preserved(self, instances, config):
        results = select_parallel("Random", instances[:4], config, max_workers=2)
        for result, instance in zip(results, instances[:4]):
            assert result.instance.target.product_id == instance.target.product_id

    def test_reproducible_across_worker_counts(self, instances, config):
        one = select_parallel("Random", instances[:4], config, max_workers=1, seed=3)
        two = select_parallel("Random", instances[:4], config, max_workers=2, seed=3)
        assert [r.selections for r in one] == [r.selections for r in two]

    def test_selector_kwargs_forwarded(self, instances, config):
        results = select_parallel(
            "CompaReSetS+",
            instances[:2],
            config,
            max_workers=1,
            selector_kwargs={"variant": "weighted"},
        )
        assert len(results) == 2

    def test_single_instance_runs_inline(self, instances, config):
        results = select_parallel("CRS", instances[:1], config)
        assert len(results) == 1

    def test_unknown_selector_raises(self, instances, config):
        with pytest.raises(ValueError, match="unknown selector"):
            select_parallel("Oracle", instances[:1], config)


class TestSharedWorkerStore:
    """The corpus crosses the process boundary once, not once per task."""

    def test_save_results_identical_pool_vs_inline(
        self, instances, config, tmp_path
    ):
        from repro.eval.runner import EvaluationSettings
        from repro.experiments.persist import save_results

        settings = EvaluationSettings(max_instances=4)
        inline = select_parallel(
            "CompaReSetS", instances[:4], config, max_workers=1, seed=3
        )
        pooled = select_parallel(
            "CompaReSetS", instances[:4], config, max_workers=2, seed=3
        )
        inline_path = tmp_path / "inline.json"
        pooled_path = tmp_path / "pooled.json"
        save_results(
            "parallel-equivalence",
            [r.selections for r in inline],
            settings,
            inline_path,
        )
        save_results(
            "parallel-equivalence",
            [r.selections for r in pooled],
            settings,
            pooled_path,
        )
        assert inline_path.read_bytes() == pooled_path.read_bytes()

    def test_pool_results_carry_parent_instances(self, instances, config):
        results = select_parallel(
            "CompaReSetS", instances[:3], config, max_workers=2
        )
        for result, instance in zip(results, instances[:3]):
            assert result.instance is instance

    def test_store_cleaned_up_after_run(self, instances, config):
        select_parallel("CompaReSetS", instances[:3], config, max_workers=2)
        assert parallel._WORKER_STORE == {}

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="zero-pickling guarantee requires the fork start method",
    )
    def test_no_per_task_corpus_pickling(self, instances, config, monkeypatch):
        """Instances must never be pickled: poison __reduce__ and still run.

        Under fork, workers inherit the parent's store at fork time, tasks
        carry only (fingerprint, index), and workers return light records —
        so a ComparisonInstance that explodes on pickling must not matter.
        """
        from repro.data.instances import ComparisonInstance

        def explode(self):
            raise AssertionError("ComparisonInstance was pickled")

        monkeypatch.setattr(ComparisonInstance, "__reduce__", explode)
        results = select_parallel(
            "CompaReSetS", instances[:3], config, max_workers=2
        )
        assert len(results) == 3
