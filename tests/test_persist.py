"""Tests for experiment result persistence."""

import math

import pytest

from repro.core.vectors import OpinionScheme
from repro.eval.runner import EvaluationSettings
from repro.experiments.persist import _jsonable, load_results, save_results


class TestJsonable:
    def test_dataclass(self):
        settings = EvaluationSettings()
        data = _jsonable(settings)
        assert data["categories"] == ["Cellphone", "Toy", "Clothing"]
        assert data["config"]["lam"] == 1.0

    def test_enum(self):
        assert _jsonable(OpinionScheme.BINARY) == "binary"

    def test_numpy(self):
        import numpy as np

        assert _jsonable(np.int64(3)) == 3
        assert _jsonable(np.float64(1.5)) == 1.5
        assert _jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_nan_becomes_null(self):
        assert _jsonable(math.nan) is None

    def test_nested(self):
        assert _jsonable({"a": (1, 2), "b": [OpinionScheme.UNARY_SCALE]}) == {
            "a": [1, 2],
            "b": ["unary-scale"],
        }


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        from repro.experiments.table2 import run_table2

        settings = EvaluationSettings(
            categories=("Toy",), scale=0.25, max_instances=3
        )
        results = run_table2(settings)
        path = tmp_path / "table2.json"
        save_results("table2", results, settings, path)

        envelope = load_results(path)
        assert envelope["experiment"] == "table2"
        assert envelope["settings"]["scale"] == 0.25
        assert envelope["results"][0]["name"] == "Toy"
        assert envelope["results"][0]["num_products"] > 0

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_results(path)

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="envelope"):
            load_results(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"experiment": "x", "version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_results(path)
