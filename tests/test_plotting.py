"""Tests for the ASCII line-plot renderer."""

import math

import pytest

from repro.eval.plotting import ascii_line_plot


class TestAsciiLinePlot:
    def test_basic_structure(self):
        text = ascii_line_plot(
            [1, 2, 3], {"up": [1.0, 2.0, 3.0]}, width=20, height=6, title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len([line for line in lines if "|" in line]) == 6
        assert "o up" in text

    def test_monotone_series_orientation(self):
        """A rising series puts its marker higher (earlier row) at larger x."""
        text = ascii_line_plot([0, 10], {"s": [0.0, 1.0]}, width=20, height=8)
        rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
        first_column = next(i for row in rows for i, c in enumerate(row) if c == "o")
        top_row = next(i for i, row in enumerate(rows) if "o" in row)
        bottom_row = max(i for i, row in enumerate(rows) if "o" in row)
        assert rows[top_row].rindex("o") > rows[bottom_row].index("o")
        assert first_column >= 0

    def test_two_series_two_markers(self):
        text = ascii_line_plot(
            [1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]}, width=12, height=5
        )
        assert "o a" in text and "x b" in text

    def test_overlap_marker(self):
        text = ascii_line_plot(
            [1, 2], {"a": [1.0, 2.0], "b": [1.0, 2.0]}, width=12, height=5
        )
        assert "8" in text

    def test_constant_series_allowed(self):
        text = ascii_line_plot([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in text

    def test_nan_skipped(self):
        text = ascii_line_plot([1, 2, 3], {"s": [1.0, math.nan, 3.0]})
        assert "s" in text

    def test_errors(self):
        with pytest.raises(ValueError, match="at least one series"):
            ascii_line_plot([1, 2], {})
        with pytest.raises(ValueError, match="points for"):
            ascii_line_plot([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError, match="two x values"):
            ascii_line_plot([1], {"s": [1.0]})
        with pytest.raises(ValueError, match="NaN"):
            ascii_line_plot([1, 2], {"s": [math.nan, math.nan]})
