"""Tests for SelectionConfig validation and helpers."""

import pytest

from repro.core.problem import SelectionConfig
from repro.core.vectors import OpinionScheme


class TestValidation:
    def test_defaults(self):
        config = SelectionConfig()
        assert config.max_reviews == 3
        assert config.lam == 1.0
        assert config.mu == 0.1  # the paper's tuned value
        assert config.scheme is OpinionScheme.BINARY
        assert config.sweeps == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_reviews": 0},
            {"lam": -0.1},
            {"mu": -1.0},
            {"sweeps": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SelectionConfig(**kwargs)

    def test_frozen(self):
        config = SelectionConfig()
        with pytest.raises(AttributeError):
            config.max_reviews = 5


class TestWith:
    def test_with_replaces_fields(self):
        config = SelectionConfig(max_reviews=3, lam=1.0)
        changed = config.with_(max_reviews=10, mu=0.5)
        assert changed.max_reviews == 10
        assert changed.mu == 0.5
        assert changed.lam == 1.0
        assert config.max_reviews == 3  # original untouched

    def test_with_validates(self):
        with pytest.raises(ValueError):
            SelectionConfig().with_(max_reviews=-1)
