"""The documented public API resolves and behaves as advertised."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_docstring_flow(self):
        """The __init__ docstring's quickstart actually runs."""
        corpus = repro.generate_corpus("Cellphone", scale=0.25, seed=7)
        instance = next(
            iter(repro.build_instances(corpus, max_comparisons=4, min_reviews=3))
        )
        config = repro.SelectionConfig(max_reviews=3)
        result = repro.make_selector("CompaReSetS+").select(instance, config)
        graph = repro.build_item_graph(result, config)
        core_list = repro.solve_greedy(graph.weights, k=min(3, instance.num_items))
        assert 0 in core_list.selected

    def test_subpackage_alls_resolve(self):
        import repro.core
        import repro.data
        import repro.eval
        import repro.graph
        import repro.text

        for module in (repro.core, repro.data, repro.eval, repro.graph, repro.text):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
