"""Tests for the table/series renderers and the experiment runner."""

import pytest

from repro.core.problem import SelectionConfig
from repro.eval.reporting import format_series, format_table
from repro.eval.runner import (
    EvaluationSettings,
    cached_corpus,
    evaluate_selectors,
    prepare_instances,
    run_selector,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["A", "Long header"], [["x", 1.5], ["yy", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "Long header" in lines[0]
        assert "1.50" in text

    def test_title(self):
        text = format_table(["A"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["A", "B"], [["only one"]])

    def test_custom_float_format(self):
        text = format_table(["v"], [[1.23456]], float_format="{:.4f}")
        assert "1.2346" in text


class TestFormatSeries:
    def test_layout(self):
        text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        assert "s1" in text and "s2" in text
        assert "0.1000" in text


class TestRunner:
    def test_cached_corpus_is_cached(self):
        a = cached_corpus("Toy", 0.25, 3)
        b = cached_corpus("Toy", 0.25, 3)
        assert a is b

    def test_prepare_instances(self):
        settings = EvaluationSettings(
            scale=0.25, max_instances=4, max_comparisons=4, min_reviews=2
        )
        instances = prepare_instances(settings, "Toy")
        assert 0 < len(instances) <= 4
        assert all(inst.num_items <= 5 for inst in instances)

    def test_run_selector_timing(self, instances, config):
        run = run_selector("Random", instances[:3], config, seed=0)
        assert run.algorithm == "Random"
        assert len(run.results) == 3
        assert len(run.seconds_per_instance) == 3
        assert run.mean_seconds >= 0

    def test_run_selector_accepts_instance_object(self, instances, config):
        from repro.core.baselines import RandomSelector

        run = run_selector(RandomSelector(), instances[:2], config)
        assert len(run.results) == 2

    def test_evaluate_selectors(self, instances, config):
        runs = evaluate_selectors(("Random", "CRS"), instances[:2], config)
        assert set(runs) == {"Random", "CRS"}

    def test_default_settings_sensible(self):
        settings = EvaluationSettings()
        assert settings.categories == ("Cellphone", "Toy", "Clothing")
        assert settings.config.mu == pytest.approx(0.01)
        assert isinstance(settings.config, SelectionConfig)
