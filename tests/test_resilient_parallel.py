"""Fault-injection tests for the resilient parallel runner.

These prove the ISSUE-1 acceptance behaviours: a crashing worker loses
only its own instance under ``on_error="skip"``, a hung solve is cut off
by the runner's timeout, degraded substitutes are flagged, and retries
recover transient failures without breaking reproducibility.
"""

import time

import pytest

from repro.eval.parallel import run_parallel, select_parallel
from repro.resilience.deadline import DeadlineExceeded
from repro.resilience.faults import InjectedFault
from repro.resilience.retry import RetryPolicy


@pytest.fixture()
def crash_id(instances) -> str:
    return instances[2].target.product_id


class TestCrashIsolation:
    def test_skip_loses_only_the_crashed_instance(self, instances, config, crash_id):
        run = run_parallel(
            "FaultInjecting",
            instances[:5],
            config,
            max_workers=2,
            selector_kwargs={"inner": "CompaReSetS_Greedy", "crash_ids": (crash_id,)},
            on_error="skip",
        )
        statuses = [o.status for o in run.outcomes]
        assert statuses == ["ok", "ok", "skipped", "ok", "ok"]
        assert run.num_skipped == 1
        assert "InjectedFault" in run.errors[crash_id]
        # The four surviving results match a fault-free run exactly.
        clean = select_parallel(
            "CompaReSetS_Greedy", instances[:5], config, max_workers=2
        )
        expected = [r.selections for i, r in enumerate(clean) if i != 2]
        assert [r.selections for r in run.results] == expected

    def test_raise_policy_propagates_original_exception(
        self, instances, config, crash_id
    ):
        with pytest.raises(InjectedFault, match="injected crash"):
            run_parallel(
                "FaultInjecting",
                instances[:5],
                config,
                max_workers=2,
                selector_kwargs={
                    "inner": "CompaReSetS_Greedy",
                    "crash_ids": (crash_id,),
                },
                on_error="raise",
            )

    def test_degrade_substitutes_flagged_baseline(self, instances, config, crash_id):
        run = run_parallel(
            "FaultInjecting",
            instances[:5],
            config,
            max_workers=2,
            selector_kwargs={"inner": "CompaReSetS", "crash_ids": (crash_id,)},
            on_error="degrade",
            degrade_selector="CompaReSetS_Greedy",
        )
        assert [o.status for o in run.outcomes] == [
            "ok", "ok", "degraded", "ok", "ok",
        ]
        substitute = run.outcomes[2].result
        assert substitute is not None
        assert substitute.degraded
        assert substitute.algorithm == "CompaReSetS_Greedy"
        assert all(not o.result.degraded for o in run.outcomes if o.status == "ok")
        # Order and count are preserved: every instance has an outcome.
        assert [o.index for o in run.outcomes] == list(range(5))

    def test_invalid_policy_rejected(self, instances, config):
        with pytest.raises(ValueError, match="on_error"):
            run_parallel(
                "CompaReSetS_Greedy", instances[:2], config, on_error="ignore"
            )


class TestRetries:
    def test_transient_failure_recovered_with_retries(
        self, instances, config, crash_id, tmp_path
    ):
        run = run_parallel(
            "FaultInjecting",
            instances[:5],
            config,
            max_workers=2,
            selector_kwargs={
                "inner": "CompaReSetS_Greedy",
                "flaky_ids": (crash_id,),
                "flaky_attempts": 1,
                "scratch_dir": str(tmp_path),
            },
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.01),
            on_error="raise",
        )
        assert all(o.status == "ok" for o in run.outcomes)
        flaky_outcome = next(o for o in run.outcomes if o.target_id == crash_id)
        assert flaky_outcome.attempts == 2
        assert all(
            o.attempts == 1 for o in run.outcomes if o.target_id != crash_id
        )

    def test_retry_reseeds_deterministically(
        self, instances, config, crash_id, tmp_path
    ):
        """A retried Random selection equals the never-failed one."""
        clean = select_parallel("Random", instances[:5], config, max_workers=2, seed=9)
        retried = select_parallel(
            "FaultInjecting",
            instances[:5],
            config,
            max_workers=2,
            seed=9,
            selector_kwargs={
                "inner": "Random",
                "flaky_ids": (crash_id,),
                "flaky_attempts": 1,
                "scratch_dir": str(tmp_path),
            },
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
        )
        assert [r.selections for r in retried] == [r.selections for r in clean]

    def test_exhausted_retries_fall_to_policy(self, instances, config, crash_id):
        run = run_parallel(
            "FaultInjecting",
            instances[:4],
            config,
            max_workers=2,
            selector_kwargs={"inner": "CompaReSetS_Greedy", "crash_ids": (crash_id,)},
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
            on_error="skip",
        )
        crashed = next(o for o in run.outcomes if o.target_id == crash_id)
        assert crashed.status == "skipped"
        assert crashed.attempts == 2


class TestTimeouts:
    def test_hung_solve_is_cut_off(self, instances, config, crash_id):
        start = time.monotonic()
        run = run_parallel(
            "FaultInjecting",
            instances[:5],
            config,
            max_workers=2,
            selector_kwargs={
                "inner": "CompaReSetS_Greedy",
                "hang": {crash_id: 5.0},
            },
            timeout=0.4,
            on_error="skip",
        )
        wall = time.monotonic() - start
        hung = next(o for o in run.outcomes if o.target_id == crash_id)
        assert hung.status == "skipped"
        assert "timed out" in hung.error
        assert sum(1 for o in run.outcomes if o.status == "ok") == 4
        # The runner must return at the timeout, not after the 5 s hang.
        assert wall < 4.0

    def test_overall_deadline_settles_unfinished(self, instances, config):
        slow = {i.target.product_id: 0.6 for i in instances[:5]}
        run = run_parallel(
            "FaultInjecting",
            instances[:5],
            config,
            max_workers=2,
            selector_kwargs={"inner": "CompaReSetS_Greedy", "slow": slow},
            deadline=0.7,
            on_error="degrade",
        )
        assert len(run.outcomes) == 5
        assert run.num_degraded >= 1
        assert run.num_ok >= 1
        for outcome in run.outcomes:
            if outcome.status == "degraded":
                assert outcome.result.degraded

    def test_overall_deadline_raises_under_raise_policy(self, instances, config):
        slow = {i.target.product_id: 0.5 for i in instances[:4]}
        with pytest.raises(DeadlineExceeded, match="unfinished"):
            run_parallel(
                "FaultInjecting",
                instances[:4],
                config,
                max_workers=2,
                selector_kwargs={"inner": "CompaReSetS_Greedy", "slow": slow},
                deadline=0.6,
                on_error="raise",
            )


class TestInlinePath:
    """max_workers=1 runs in-process but honours the same policies."""

    def test_inline_skip(self, instances, config, crash_id):
        run = run_parallel(
            "FaultInjecting",
            instances[:4],
            config,
            max_workers=1,
            selector_kwargs={"inner": "CompaReSetS_Greedy", "crash_ids": (crash_id,)},
            on_error="skip",
        )
        assert [o.status for o in run.outcomes] == ["ok", "ok", "skipped", "ok"]

    def test_inline_retry(self, instances, config, crash_id, tmp_path):
        run = run_parallel(
            "FaultInjecting",
            instances[:4],
            config,
            max_workers=1,
            selector_kwargs={
                "inner": "CompaReSetS_Greedy",
                "flaky_ids": (crash_id,),
                "flaky_attempts": 1,
                "scratch_dir": str(tmp_path),
            },
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
        )
        assert all(o.status == "ok" for o in run.outcomes)

    def test_inline_degrade(self, instances, config, crash_id):
        run = run_parallel(
            "FaultInjecting",
            instances[:4],
            config,
            max_workers=1,
            selector_kwargs={"inner": "CompaReSetS", "crash_ids": (crash_id,)},
            on_error="degrade",
        )
        degraded = next(o for o in run.outcomes if o.status == "degraded")
        assert degraded.result.degraded


class TestFacade:
    def test_select_parallel_unchanged_for_clean_runs(self, instances, config):
        results = select_parallel("CompaReSetS_Greedy", instances[:3], config)
        assert len(results) == 3
        assert all(not r.degraded for r in results)

    def test_empty_instances(self, config):
        assert select_parallel("CompaReSetS_Greedy", [], config) == []
