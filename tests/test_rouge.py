"""Unit and property tests for the from-scratch ROUGE implementation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.rouge import RougeScore, rouge_1, rouge_2, rouge_l, rouge_n, rouge_scores

words = st.lists(
    st.sampled_from(["the", "battery", "is", "great", "poor", "screen", "a"]),
    max_size=20,
)


class TestRougeN:
    def test_identical_texts_score_one(self):
        score = rouge_1("the battery is great", "the battery is great")
        assert score.precision == score.recall == score.f1 == 1.0

    def test_disjoint_texts_score_zero(self):
        score = rouge_1("battery great", "screen poor")
        assert score.f1 == 0.0

    def test_partial_overlap(self):
        # candidate: {the, battery}, reference: {the, screen}; 1 match of 2.
        score = rouge_1("the battery", "the screen")
        assert score.precision == pytest.approx(0.5)
        assert score.recall == pytest.approx(0.5)
        assert score.f1 == pytest.approx(0.5)

    def test_clipping_counts(self):
        # candidate has "the" x3 but reference only x1: matches clipped to 1.
        score = rouge_1("the the the", "the end")
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == pytest.approx(1 / 2)

    def test_rouge_2_bigram_overlap(self):
        score = rouge_2("the battery is great", "the battery is poor")
        # candidate bigrams: (the,battery),(battery,is),(is,great); 2 match.
        assert score.precision == pytest.approx(2 / 3)

    def test_rouge_2_single_token_texts(self):
        assert rouge_2("battery", "battery").f1 == 0.0

    def test_empty_candidate(self):
        assert rouge_1("", "anything here").f1 == 0.0

    def test_empty_reference(self):
        assert rouge_1("anything here", "").f1 == 0.0

    def test_accepts_token_lists(self):
        assert rouge_1(["a", "b"], ["a", "b"]).f1 == 1.0

    @given(words, words)
    def test_f1_symmetric(self, a, b):
        assert rouge_n(a, b, 1).f1 == pytest.approx(rouge_n(b, a, 1).f1)

    @given(words, words)
    def test_bounds(self, a, b):
        score = rouge_n(a, b, 1)
        for value in (score.precision, score.recall, score.f1):
            assert 0.0 <= value <= 1.0


class TestRougeL:
    def test_identical(self):
        assert rouge_l("a b c", "a b c").f1 == 1.0

    def test_subsequence_not_substring(self):
        # LCS of "a x b y c" and "a b c" is "a b c" (length 3).
        score = rouge_l("a x b y c", "a b c")
        assert score.recall == pytest.approx(1.0)
        assert score.precision == pytest.approx(3 / 5)

    def test_order_matters(self):
        forward = rouge_l("a b c d", "a b c d").f1
        reversed_ = rouge_l("d c b a", "a b c d").f1
        assert forward > reversed_

    def test_empty(self):
        assert rouge_l("", "a b").f1 == 0.0

    @given(words, words)
    def test_f1_symmetric(self, a, b):
        assert rouge_l(a, b).f1 == pytest.approx(rouge_l(b, a).f1)

    @given(words)
    def test_self_similarity_is_one(self, a):
        if a:
            assert rouge_l(a, a).f1 == pytest.approx(1.0)

    @given(words, words)
    def test_rouge_l_at_most_rouge_1(self, a, b):
        """LCS matches are a subset of clipped unigram matches."""
        assert rouge_l(a, b).f1 <= rouge_n(a, b, 1).f1 + 1e-12


class TestRougeScores:
    def test_all_variants_present(self):
        scores = rouge_scores("the battery is great", "the battery is poor")
        assert set(scores) == {"rouge-1", "rouge-2", "rouge-l"}
        assert scores["rouge-1"].f1 >= scores["rouge-2"].f1

    def test_matches_individual_functions(self):
        a, b = "the battery is great", "a great battery"
        scores = rouge_scores(a, b)
        assert scores["rouge-1"].f1 == pytest.approx(rouge_1(a, b).f1)
        assert scores["rouge-2"].f1 == pytest.approx(rouge_2(a, b).f1)
        assert scores["rouge-l"].f1 == pytest.approx(rouge_l(a, b).f1)


class TestRougeScoreFromCounts:
    def test_zero_denominators(self):
        assert RougeScore.from_counts(0, 0, 0).f1 == 0.0

    def test_basic(self):
        score = RougeScore.from_counts(1, 2, 2)
        assert score.f1 == pytest.approx(0.5)
