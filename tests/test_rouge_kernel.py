"""Equivalence harness: the vectorised ROUGE kernel vs the reference.

The kernel's contract is *bitwise* equality with :mod:`repro.text.rouge`
— same clipped-match / LCS integers, same float operations in the same
order — so every comparison here uses ``==`` on floats, not approx.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.alignment import AlignmentScorer
from repro.text.rouge import rouge_l, rouge_n, rouge_scores
from repro.text.rouge_kernel import (
    CorpusInterner,
    pairwise_alignment_matrix,
    rouge_pair_grid,
    rouge_scores_many,
)

WORDS = [
    "battery", "screen", "great", "poor", "the", "is", "very", "camera",
    "café", "naïve", "résumé", "don't", "well-made", "скоро", "好",
]


def random_texts(rng: np.random.Generator, count: int, max_len: int = 14) -> list[str]:
    texts = []
    for _ in range(count):
        length = int(rng.integers(0, max_len + 1))
        texts.append(" ".join(rng.choice(WORDS, size=length)))
    return texts


def assert_grid_matches_reference(group_a: list[str], group_b: list[str]) -> None:
    interner = CorpusInterner()
    grid = pairwise_alignment_matrix(group_a, group_b, interner=interner)
    for i, a in enumerate(group_a):
        tokens_a = interner.tokens(a)
        for j, b in enumerate(group_b):
            tokens_b = interner.tokens(b)
            assert grid.rouge_1[i, j] == rouge_n(tokens_a, tokens_b, 1).f1
            assert grid.rouge_2[i, j] == rouge_n(tokens_a, tokens_b, 2).f1
            assert grid.rouge_l[i, j] == rouge_l(tokens_a, tokens_b).f1


class TestGridEquivalence:
    def test_random_grids_bitwise_equal(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            group_a = random_texts(rng, int(rng.integers(1, 6)))
            group_b = random_texts(rng, int(rng.integers(1, 6)))
            assert_grid_matches_reference(group_a, group_b)

    def test_empty_and_single_token_reviews(self):
        group = ["", "battery", "battery battery", "the screen is great"]
        assert_grid_matches_reference(group, group)

    def test_duplicate_reviews(self):
        group = ["great screen great", "great screen great", "poor battery"]
        assert_grid_matches_reference(group, group)

    def test_unicode_reviews(self):
        group = ["café naïve 好 好", "скоро café", "don't don't well-made"]
        assert_grid_matches_reference(group, ["好 café", "", "naïve"])

    def test_heavy_repetition_exercises_threshold_depth(self):
        group_a = ["the the the the battery the", "the battery"]
        group_b = ["the the battery battery battery", "the"]
        assert_grid_matches_reference(group_a, group_b)

    def test_empty_groups_yield_empty_grids(self):
        grid = pairwise_alignment_matrix([], ["battery"])
        assert grid.shape == (0, 1)
        grid = pairwise_alignment_matrix(["battery"], [])
        assert grid.shape == (1, 0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.sampled_from(WORDS), max_size=12),
        st.lists(st.sampled_from(WORDS), max_size=12),
    )
    def test_property_pair_bitwise_equal(self, tokens_a, tokens_b):
        grid = pairwise_alignment_matrix([tokens_a], [tokens_b])
        assert grid.rouge_1[0, 0] == rouge_n(tokens_a, tokens_b, 1).f1
        assert grid.rouge_2[0, 0] == rouge_n(tokens_a, tokens_b, 2).f1
        assert grid.rouge_l[0, 0] == rouge_l(tokens_a, tokens_b).f1


class TestBatchApis:
    def test_rouge_scores_many_matches_loop(self):
        rng = np.random.default_rng(3)
        candidates = random_texts(rng, 8)
        references = random_texts(rng, 8)
        batch = rouge_scores_many(candidates, references)
        loop = [rouge_scores(c, r) for c, r in zip(candidates, references)]
        assert batch == loop

    def test_rouge_scores_many_length_mismatch(self):
        with pytest.raises(ValueError, match="candidates"):
            rouge_scores_many(["a"], ["a", "b"])

    def test_shared_interner_reused_across_calls(self):
        interner = CorpusInterner()
        pairwise_alignment_matrix(["battery screen"], ["screen"], interner=interner)
        size = interner.vocab_size
        pairwise_alignment_matrix(["battery"], ["screen"], interner=interner)
        assert interner.vocab_size == size  # no re-interning, vocab unchanged


class TestTokenizationMemo:
    """Regression: tokenize must run once per distinct review text."""

    def test_interner_tokenizes_each_text_once(self, monkeypatch):
        import repro.text.rouge_kernel as kernel_module

        calls: list[str] = []
        real_tokenize = kernel_module.tokenize

        def counting_tokenize(text):
            calls.append(text)
            return real_tokenize(text)

        monkeypatch.setattr(kernel_module, "tokenize", counting_tokenize)
        interner = CorpusInterner()
        texts = ["battery is great", "screen is poor", "battery is great"]
        for _ in range(3):
            for text in texts:
                interner.intern(text)
                interner.tokens(text)
        assert sorted(calls) == sorted(set(texts))

    def test_scorer_tokenizes_once_per_review_across_views(
        self, instances, config, monkeypatch
    ):
        import repro.text.rouge_kernel as kernel_module
        from repro.core.selection import make_selector

        result = make_selector("CompaReSetS").select(instances[0], config)
        distinct_texts = {
            review.text
            for i in range(result.instance.num_items)
            for review in result.selected_reviews(i)
        }

        calls: list[str] = []
        real_tokenize = kernel_module.tokenize

        def counting_tokenize(text):
            calls.append(text)
            return real_tokenize(text)

        monkeypatch.setattr(kernel_module, "tokenize", counting_tokenize)
        for use_kernel in (True, False):
            calls.clear()
            scorer = AlignmentScorer(use_kernel=use_kernel)
            scorer.score_both(result)
            scorer.score(result, "target")
            scorer.score(result, "among")
            assert len(calls) == len(set(calls))
            assert set(calls) <= distinct_texts


class TestScorerEquivalence:
    """Kernel and reference AlignmentScorer paths agree bitwise."""

    def test_alignment_scores_bitwise_equal(self, instances, config):
        from repro.core.selection import make_selector

        results = [
            make_selector("CompaReSetS").select(instance, config)
            for instance in instances[:3]
        ]
        kernel_scorer = AlignmentScorer(use_kernel=True)
        reference_scorer = AlignmentScorer(use_kernel=False)
        for result in results:
            assert kernel_scorer.score_both(result) == reference_scorer.score_both(
                result
            )
            for view in ("target", "among"):
                assert kernel_scorer.score(result, view) == reference_scorer.score(
                    result, view
                )

    def test_rouge_pair_grid_direct(self):
        interner = CorpusInterner()
        group = [interner.intern(t) for t in ["battery is great", "", "great great"]]
        grid = rouge_pair_grid(group, group)
        assert grid.shape == (3, 3)
        assert grid.rouge_1[0, 0] == 1.0
        assert grid.rouge_1[1, 1] == 0.0  # empty vs empty
