"""Tests for SelectionResult, the registry, and make_selector."""

import pytest

from repro.core.selection import SELECTORS, SelectionResult, Selector, make_selector


class TestSelectionResult:
    def test_validates_count(self, instance):
        with pytest.raises(ValueError, match="selections"):
            SelectionResult(instance=instance, selections=((),), algorithm="x")

    def test_validates_duplicates(self, instance):
        selections = [()] * instance.num_items
        selections[0] = (0, 0)
        with pytest.raises(ValueError, match="duplicate"):
            SelectionResult(
                instance=instance, selections=tuple(selections), algorithm="x"
            )

    def test_validates_range(self, instance):
        selections = [()] * instance.num_items
        selections[1] = (9999,)
        with pytest.raises(ValueError, match="out of range"):
            SelectionResult(
                instance=instance, selections=tuple(selections), algorithm="x"
            )

    def test_selected_reviews(self, instance):
        selections = [(0,)] + [()] * (instance.num_items - 1)
        result = SelectionResult(
            instance=instance, selections=tuple(selections), algorithm="x"
        )
        assert result.selected_reviews(0) == (instance.reviews[0][0],)
        assert result.all_selected()[1] == ()

    def test_restricted_to_items(self, instance):
        selections = tuple((0,) for _ in range(instance.num_items))
        result = SelectionResult(
            instance=instance, selections=selections, algorithm="x"
        )
        sub = result.restricted_to_items([0, 2])
        assert sub.instance.num_items == 2
        assert sub.selections == ((0,), (0,))
        assert sub.algorithm == "x"

    def test_restricted_requires_target_first(self, instance):
        selections = tuple(() for _ in range(instance.num_items))
        result = SelectionResult(
            instance=instance, selections=selections, algorithm="x"
        )
        with pytest.raises(ValueError, match="target"):
            result.restricted_to_items([1, 0])


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        assert {
            "Random",
            "CRS",
            "CompaReSetS_Greedy",
            "CompaReSetS",
            "CompaReSetS+",
        } <= set(SELECTORS)

    def test_make_selector(self):
        selector = make_selector("CompaReSetS")
        assert isinstance(selector, Selector)
        assert selector.name == "CompaReSetS"

    def test_make_selector_with_kwargs(self):
        selector = make_selector("CompaReSetS+", variant="weighted")
        assert selector.variant == "weighted"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown selector"):
            make_selector("Oracle")

    def test_every_registered_selector_satisfies_protocol(self):
        for name in SELECTORS:
            assert isinstance(make_selector(name), Selector)
