"""Tests for window-based aspect-opinion extraction."""

from dataclasses import replace

import pytest

from repro.data.corpus import Corpus
from repro.text.aspects import AspectTerm, AspectVocabulary, mine_aspects
from repro.text.sentiment import (
    ExtractionConfig,
    agreement_with_ground_truth,
    annotate_corpus,
    annotate_review,
    extract_mentions,
)
from tests.conftest import make_review


def vocabulary_of(*stems: str) -> AspectVocabulary:
    return AspectVocabulary(
        terms=tuple(
            AspectTerm(stem=s, surface=s, document_frequency=5, rating_correlation=0.5)
            for s in stems
        )
    )


VOCAB = vocabulary_of("batteri", "screen", "price")


class TestExtractMentions:
    def test_positive_opinion(self):
        mentions = extract_mentions("The battery is great.", VOCAB)
        assert len(mentions) == 1
        assert mentions[0].aspect == "batteri"
        assert mentions[0].sentiment == 1

    def test_negative_opinion(self):
        mentions = extract_mentions("The battery is terrible.", VOCAB)
        assert mentions[0].sentiment == -1

    def test_negation_flips(self):
        mentions = extract_mentions("The battery is not great.", VOCAB)
        assert mentions[0].sentiment == -1

    def test_double_negation(self):
        mentions = extract_mentions("The battery is not not great.", VOCAB)
        assert mentions[0].sentiment == 1

    def test_intensifier_strengthens(self):
        plain = extract_mentions("The battery is great.", VOCAB)
        strong = extract_mentions("The battery is extremely great.", VOCAB)
        assert strong[0].strength > plain[0].strength

    def test_neutral_mention_without_opinion(self):
        mentions = extract_mentions("The battery arrived in a box.", VOCAB)
        assert mentions[0].sentiment == 0

    def test_opinion_outside_window_ignored(self):
        config = ExtractionConfig(attribution_window=2)
        text = "The battery sat on the shelf for days and weeks until broken."
        mentions = extract_mentions(text, config=config, vocabulary=VOCAB)
        assert mentions[0].sentiment == 0

    def test_nearest_aspect_wins(self):
        mentions = extract_mentions("The battery is great but the screen is terrible.", VOCAB)
        by_aspect = {m.aspect: m.sentiment for m in mentions}
        assert by_aspect == {"batteri": 1, "screen": -1}

    def test_multiple_sentences_aggregate(self):
        text = "The battery is great. The battery is terrible. The battery is awful."
        mentions = extract_mentions(text, VOCAB)
        assert mentions[0].sentiment == -1  # net negative

    def test_no_aspects_no_mentions(self):
        assert extract_mentions("Totally unrelated text.", VOCAB) == ()

    def test_stemmed_matching(self):
        mentions = extract_mentions("The batteries are great.", VOCAB)
        assert mentions[0].aspect == "batteri"

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ExtractionConfig(attribution_window=0)
        with pytest.raises(ValueError):
            ExtractionConfig(negation_window=-1)


class TestAnnotate:
    def test_annotate_review_replaces_mentions(self):
        review = make_review("r1", "p1", [("old", 1)], text="The screen is great.")
        annotated = annotate_review(review, VOCAB)
        assert {m.aspect for m in annotated.mentions} == {"screen"}
        assert annotated.review_id == review.review_id

    def test_annotate_corpus_preserves_structure(self, cellphone_corpus):
        vocabulary = mine_aspects(
            list(cellphone_corpus.reviews)[:200], candidate_pool=150, keep=40
        )
        annotated = annotate_corpus(cellphone_corpus, vocabulary)
        assert len(annotated.reviews) == len(cellphone_corpus.reviews)
        assert annotated.name == cellphone_corpus.name


class TestAgreement:
    def test_perfect_agreement(self):
        truth = [make_review("r1", "p1", [("batteri", 1)])]
        assert agreement_with_ground_truth(truth, truth) == 1.0

    def test_zero_agreement(self):
        truth = [make_review("r1", "p1", [("batteri", 1)])]
        extracted = [make_review("r1", "p1", [("batteri", -1)])]
        assert agreement_with_ground_truth(extracted, truth) == 0.0

    def test_empty(self):
        assert agreement_with_ground_truth([], []) == 0.0

    def test_pipeline_recovers_synthetic_ground_truth(self, cellphone_corpus):
        """End-to-end: mine + extract recovers planted signed mentions.

        The text renders aspects through synonym surfaces, so extracted
        stems are canonicalised via the profile's alias map before
        comparison.  0.4 is the calibrated floor for this lexicon-based
        extractor on the synthetic text.
        """
        from repro.data.synthetic import default_profiles, surface_stem_aliases

        reviews = list(cellphone_corpus.reviews)[:250]
        stripped = [replace(r, mentions=()) for r in reviews]
        vocabulary = mine_aspects(stripped, candidate_pool=300, keep=120)
        annotated = [annotate_review(r, vocabulary) for r in stripped]
        aliases = surface_stem_aliases(default_profiles(0.35)["Cellphone"])
        agreement = agreement_with_ground_truth(annotated, reviews, aliases)
        assert agreement > 0.4
