"""Unit tests for admission control (token bucket, bounded queue, costs)."""

from __future__ import annotations

import threading

import pytest

from repro.serve.admission import (
    AdmissionController,
    Overloaded,
    TokenBucket,
    request_cost,
)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_unlimited_always_grants(self):
        bucket = TokenBucket(rate=None)
        assert bucket.try_take(1e9) == 0.0
        assert bucket.tokens == float("inf")

    def test_burst_then_refusal_with_wait_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.try_take(5.0) == 0.0  # full burst available
        wait = bucket.try_take(1.0)
        assert wait == pytest.approx(0.1)  # 1 token at 10/s
        # Refusal consumed nothing; after the hinted wait it succeeds.
        clock.advance(wait)
        assert bucket.try_take(1.0) == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        bucket.try_take(5.0)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(5.0)

    def test_cost_larger_than_burst_hint_is_finite(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        bucket.try_take(2.0)
        # A cost above burst can never fully accumulate; the hint is the
        # time to refill the whole burst rather than infinity.
        wait = bucket.try_take(5.0)
        assert 0 < wait <= 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=None).try_take(-1.0)


class TestAdmissionController:
    def test_bounded_pending_queue(self):
        controller = AdmissionController(max_pending=2)
        first = controller.admit()
        second = controller.admit()
        with pytest.raises(Overloaded) as excinfo:
            controller.admit()
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.retry_after > 0
        first.release()
        third = controller.admit()  # slot freed -> admitted again
        second.release()
        third.release()
        assert controller.inflight == 0

    def test_slot_released_on_exception(self):
        controller = AdmissionController(max_pending=1)
        with pytest.raises(RuntimeError, match="boom"):
            with controller.admit():
                raise RuntimeError("boom")
        assert controller.inflight == 0
        with controller.admit():
            pass

    def test_rate_limited_with_retry_after(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=100, rate=10.0, burst=2.0, clock=clock
        )
        with controller.admit(cost=2.0):
            pass
        with pytest.raises(Overloaded) as excinfo:
            controller.admit(cost=2.0)
        assert excinfo.value.reason == "rate_limited"
        assert excinfo.value.retry_after == pytest.approx(0.2)
        clock.advance(0.2)
        with controller.admit(cost=2.0):
            pass

    def test_stats_and_shed_ratio(self):
        controller = AdmissionController(max_pending=1)
        slot = controller.admit()
        for _ in range(3):
            with pytest.raises(Overloaded):
                controller.admit()
        stats = controller.stats()
        assert stats.admitted == 1
        assert stats.shed_queue == 3
        assert stats.shed == 3
        assert stats.shed_ratio == pytest.approx(0.75)
        assert stats.saturation == 1.0
        assert controller.saturated()
        slot.release()
        assert not controller.saturated()

    def test_thread_safety_of_release(self):
        controller = AdmissionController(max_pending=8)
        outcomes = []
        lock = threading.Lock()

        def worker():
            try:
                with controller.admit():
                    pass
            except Overloaded:
                with lock:
                    outcomes.append("shed")
            else:
                with lock:
                    outcomes.append("ok")

        threads = [threading.Thread(target=worker) for _ in range(64)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 64
        assert controller.inflight == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_retry_after=-1.0)


class TestRequestCost:
    def test_narrow_costs_more_than_select(self):
        select = request_cost("select", m=3)
        narrow = request_cost("narrow", m=3, k=3, stages=3)
        assert narrow > select > 0

    def test_monotone_in_m_and_corpus_size(self):
        assert request_cost("select", m=10) > request_cost("select", m=1)
        small = request_cost("select", m=3, reviews=100)
        large = request_cost("select", m=3, reviews=1_000_000)
        assert large > small
