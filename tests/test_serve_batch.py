"""Tests for the same-key micro-batching queue."""

from __future__ import annotations

import threading
import time

import pytest

from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.serve.batch import BatchClosed, MicroBatcher


def echo_handler(key, requests):
    return [(key, request) for request in requests]


class TestPassThrough:
    def test_single_request(self):
        batcher = MicroBatcher(echo_handler, max_wait=0.0)
        assert batcher.submit("k", 1) == ("k", 1)
        stats = batcher.stats()
        assert stats.submitted == 1 and stats.batches == 1
        assert stats.amortisation == 1.0

    def test_zero_window_means_batches_of_one(self):
        batcher = MicroBatcher(echo_handler, max_wait=0.0)
        for index in range(5):
            batcher.submit("k", index)
        assert batcher.stats().batches == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(echo_handler, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(echo_handler, max_wait=-1.0)


class TestGrouping:
    def test_concurrent_same_key_requests_share_one_handler_call(self):
        calls = []
        started = threading.Event()

        def handler(key, requests):
            calls.append(list(requests))
            return [request * 10 for request in requests]

        batcher = MicroBatcher(handler, max_batch=4, max_wait=0.5)
        results = {}

        def worker(value):
            if value != 0:
                started.wait(5.0)  # let worker 0 become the leader first
            results[value] = batcher.submit("key", value)

        threads = [threading.Thread(target=worker, args=(v,)) for v in range(4)]
        threads[0].start()
        deadline = time.monotonic() + 5.0
        while batcher.stats().submitted < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        started.set()
        for thread in threads[1:]:
            thread.start()
        for thread in threads:
            thread.join(5.0)

        assert results == {0: 0, 1: 10, 2: 20, 3: 30}
        assert len(calls) == 1, "all four requests must share one handler call"
        assert sorted(calls[0]) == [0, 1, 2, 3]
        stats = batcher.stats()
        assert stats.largest_batch == 4
        assert stats.batched_requests == 3
        assert stats.amortisation == 4.0

    def test_full_batch_seals_before_window_expires(self):
        def handler(key, requests):
            return list(requests)

        batcher = MicroBatcher(handler, max_batch=2, max_wait=30.0)
        results = []

        def worker(value):
            results.append(batcher.submit("key", value))

        threads = [threading.Thread(target=worker, args=(v,)) for v in (1, 2)]
        begun = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        # With a 30 s window, only the max_batch=2 early-seal can explain
        # a fast finish.
        assert time.monotonic() - begun < 10.0
        assert sorted(results) == [1, 2]

    def test_distinct_keys_do_not_batch_together(self):
        calls = []

        def handler(key, requests):
            calls.append((key, list(requests)))
            return list(requests)

        batcher = MicroBatcher(handler, max_wait=0.0)
        batcher.submit("a", 1)
        batcher.submit("b", 2)
        assert sorted(key for key, _ in calls) == ["a", "b"]


class TestFailureModes:
    def test_handler_error_fails_every_member(self):
        def handler(key, requests):
            raise RuntimeError("batch solver died")

        batcher = MicroBatcher(handler, max_batch=2, max_wait=5.0)
        errors = []

        def worker(value):
            try:
                batcher.submit("key", value)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker, args=(v,)) for v in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        assert errors == ["batch solver died"] * 2

    def test_wrong_result_count_is_an_error(self):
        batcher = MicroBatcher(lambda key, requests: [], max_wait=0.0)
        with pytest.raises(RuntimeError, match="0 results for 1 requests"):
            batcher.submit("k", 1)

    def test_follower_deadline(self):
        release = threading.Event()

        def handler(key, requests):
            release.wait(5.0)
            return list(requests)

        batcher = MicroBatcher(handler, max_batch=8, max_wait=0.2)
        outcome = {}

        def leader():
            outcome["leader"] = batcher.submit("key", "slow")

        def follower():
            try:
                batcher.submit("key", "hurried", deadline=Deadline.after(0.01))
            except DeadlineExceeded:
                outcome["follower"] = "deadline"

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        deadline = time.monotonic() + 5.0
        while batcher.stats().submitted < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        follower_thread.join(5.0)
        assert outcome.get("follower") == "deadline"
        release.set()
        leader_thread.join(5.0)
        assert outcome["leader"] == "slow"

    def test_closed_batcher_rejects_submissions(self):
        batcher = MicroBatcher(echo_handler)
        batcher.close()
        with pytest.raises(BatchClosed):
            batcher.submit("k", 1)

    def test_leader_deadline_expires_during_window(self):
        """A leader whose deadline lapses while the window is open must not
        run the solve for itself — and with no joiners the handler is never
        called at all."""
        calls = []

        def handler(key, requests):
            calls.append(list(requests))
            return list(requests)

        batcher = MicroBatcher(handler, max_batch=8, max_wait=0.2)
        with pytest.raises(DeadlineExceeded, match="batch window"):
            batcher.submit("key", "late", deadline=Deadline.after(0.01))
        assert calls == []

    def test_leader_deadline_expiry_still_serves_joiners(self):
        """The expired leader drops out, but in-budget joiners sealed into
        its batch still get their results from one handler call."""
        calls = []

        def handler(key, requests):
            calls.append(list(requests))
            return [request * 10 for request in requests]

        batcher = MicroBatcher(handler, max_batch=8, max_wait=0.3)
        outcome = {}

        def leader():
            try:
                batcher.submit("key", 1, deadline=Deadline.after(0.05))
            except DeadlineExceeded:
                outcome["leader"] = "deadline"

        def joiner():
            outcome["joiner"] = batcher.submit("key", 2)

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        deadline = time.monotonic() + 5.0
        while batcher.stats().submitted < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        joiner_thread = threading.Thread(target=joiner)
        joiner_thread.start()
        leader_thread.join(5.0)
        joiner_thread.join(5.0)
        assert outcome == {"leader": "deadline", "joiner": 20}
        assert calls == [[2]]

    def test_leader_deadline_expiry_propagates_handler_failure(self):
        """If the joiners-only solve dies, joiners see the handler error and
        the expired leader still sees its deadline."""

        def handler(key, requests):
            raise RuntimeError("batch solver died")

        batcher = MicroBatcher(handler, max_batch=8, max_wait=0.3)
        outcome = {}

        def leader():
            try:
                batcher.submit("key", 1, deadline=Deadline.after(0.05))
            except DeadlineExceeded:
                outcome["leader"] = "deadline"

        def joiner():
            try:
                batcher.submit("key", 2)
            except RuntimeError as exc:
                outcome["joiner"] = str(exc)

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        deadline = time.monotonic() + 5.0
        while batcher.stats().submitted < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        joiner_thread = threading.Thread(target=joiner)
        joiner_thread.start()
        leader_thread.join(5.0)
        joiner_thread.join(5.0)
        assert outcome == {"leader": "deadline", "joiner": "batch solver died"}
