"""Unit tests for circuit breakers and the per-backend breaker board."""

from __future__ import annotations

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    CircuitOpen,
)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_trips_open_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_time=30.0, clock=clock)
        assert breaker.state == CLOSED
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_recovery_time(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # first probe claimed
        assert breaker.state == HALF_OPEN

    def test_half_open_limits_probe_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=1.0, half_open_probes=1, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        # Probe slot taken: concurrent calls are refused until it resolves.
        assert not breaker.allow()

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        # The recovery window restarts from the reopen.
        clock.advance(1.5)
        assert breaker.allow()

    def test_transition_log(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            recovery_time=1.0,
            clock=clock,
            on_transition=lambda old, new: seen.append((old, new)),
        )
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        assert seen == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        assert breaker.transitions == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class TestBreakerBoard:
    def _failing(self, weights, k, target, deadline):
        raise RuntimeError("backend down")

    def test_lazy_per_backend_breakers(self):
        board = BreakerBoard(clock=FakeClock())
        assert board.states() == {}
        board.breaker("milp")
        assert board.states() == {"milp": CLOSED}

    def test_wrap_records_failures_and_trips(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=2, clock=clock)
        wrapped = board.wrap("milp", self._failing)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                wrapped(None, 1, None, None)
        assert board.states()["milp"] == OPEN
        assert board.open_backends() == ("milp",)

    def test_wrap_refuses_fast_when_open(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, clock=clock)
        skipped: list[str] = []
        wrapped = board.wrap("milp", self._failing, skipped=skipped)
        with pytest.raises(RuntimeError):
            wrapped(None, 1, None, None)
        with pytest.raises(CircuitOpen):
            wrapped(None, 1, None, None)
        assert skipped == ["milp"]

    def test_ungated_wrap_records_but_never_refuses(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, clock=clock)
        wrapped = board.wrap("greedy", self._failing, gate=False)
        with pytest.raises(RuntimeError):
            wrapped(None, 1, None, None)
        assert board.states()["greedy"] == OPEN
        # Terminal stages still run even with an open breaker.
        with pytest.raises(RuntimeError):
            wrapped(None, 1, None, None)

    def test_wrap_success_path_and_recovery(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, recovery_time=5.0, clock=clock)
        calls = {"n": 0}

        def flaky_once(weights, k, target, deadline):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return "solved"

        wrapped = board.wrap("bnb", flaky_once)
        with pytest.raises(RuntimeError):
            wrapped(None, 1, None, None)
        assert board.states()["bnb"] == OPEN
        clock.advance(5.5)
        assert wrapped(None, 1, None, None) == "solved"  # half-open probe succeeds
        assert board.states()["bnb"] == CLOSED

    def test_transition_hook_receives_backend_name(self):
        clock = FakeClock()
        seen = []
        board = BreakerBoard(
            failure_threshold=1,
            clock=clock,
            transition_hook=lambda backend, old, new: seen.append(
                (backend, old, new)
            ),
        )
        wrapped = board.wrap("milp", self._failing)
        with pytest.raises(RuntimeError):
            wrapped(None, 1, None, None)
        assert seen == [("milp", CLOSED, OPEN)]
