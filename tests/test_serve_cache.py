"""Tests for the single-flight LRU+TTL result cache."""

from __future__ import annotations

import threading
import time

import pytest

from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.serve.cache import ResultCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(max_size=4)
        value, source = cache.get_or_compute("k", lambda: 41)
        assert (value, source) == (41, "miss")
        value, source = cache.get_or_compute("k", lambda: 42)
        assert (value, source) == (41, "hit")
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.coalesced == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)  # refreshes a's recency
        cache.put("c", 3)                   # evicts b, the least recent
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert cache.stats().evictions == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(max_size=4, ttl=10.0, clock=clock)
        cache.put("k", "v")
        assert cache.get("k") == (True, "v")
        clock.now = 9.999
        assert cache.get("k") == (True, "v")
        clock.now = 10.0
        assert cache.get("k") == (False, None)
        assert cache.stats().expirations == 1

    def test_errors_are_not_cached(self):
        cache = ResultCache(max_size=4)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", self._boom)
        value, source = cache.get_or_compute("k", lambda: "recovered")
        assert (value, source) == ("recovered", "miss")

    @staticmethod
    def _boom():
        raise RuntimeError("solver exploded")

    def test_invalidate_and_clear(self):
        cache = ResultCache(max_size=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_size=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0.0)


class TestSingleFlight:
    def test_racing_threads_solve_once(self):
        """N threads racing the same key trigger exactly one compute."""
        cache = ResultCache(max_size=4)
        release = threading.Event()
        solves = []
        results = []

        def compute():
            release.wait(5.0)
            solves.append(threading.get_ident())
            return "answer"

        def worker():
            results.append(cache.get_or_compute("key", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Let every follower reach the wait before the leader finishes.
        deadline = time.monotonic() + 5.0
        while cache.stats().coalesced < 7 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join(5.0)

        assert len(solves) == 1, "single-flight must collapse to one solve"
        assert len(results) == 8
        assert {value for value, _ in results} == {"answer"}
        sources = sorted(source for _, source in results)
        assert sources.count("miss") == 1
        assert sources.count("coalesced") == 7
        stats = cache.stats()
        assert stats.misses == 1 and stats.coalesced == 7 and stats.inflight == 0

    def test_distinct_keys_proceed_in_parallel(self):
        """Two different keys never serialise behind one another."""
        cache = ResultCache(max_size=4)
        barrier = threading.Barrier(2, timeout=5.0)
        results = {}

        def compute(name):
            # Both computes must be inside compute() simultaneously to
            # pass the barrier; if key B waited on key A this would
            # deadlock (and the barrier timeout would fail the test).
            barrier.wait()
            return name

        def worker(key):
            results[key] = cache.get_or_compute(key, lambda: compute(key))

        threads = [
            threading.Thread(target=worker, args=("a",)),
            threading.Thread(target=worker, args=("b",)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        assert results == {"a": ("a", "miss"), "b": ("b", "miss")}

    def test_leader_error_propagates_to_followers(self):
        cache = ResultCache(max_size=4)
        release = threading.Event()
        errors = []

        def compute():
            release.wait(5.0)
            raise RuntimeError("leader failed")

        def worker():
            try:
                cache.get_or_compute("key", compute)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 5.0
        while cache.stats().coalesced < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join(5.0)
        assert errors == ["leader failed"] * 3
        # Nothing was cached; a later request recomputes.
        assert cache.get("key") == (False, None)

    def test_follower_deadline_expires_without_killing_leader(self):
        cache = ResultCache(max_size=4)
        release = threading.Event()
        outcome = {}

        def compute():
            release.wait(5.0)
            return "late answer"

        def leader():
            outcome["leader"] = cache.get_or_compute("key", compute)

        def follower():
            try:
                cache.get_or_compute("key", lambda: "x", Deadline.after(0.01))
            except DeadlineExceeded:
                outcome["follower"] = "deadline"

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        deadline = time.monotonic() + 5.0
        while cache.stats().misses < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        follower_thread.join(5.0)
        assert outcome["follower"] == "deadline"
        release.set()
        leader_thread.join(5.0)
        assert outcome["leader"] == ("late answer", "miss")

    def test_compute_raise_releases_every_coalesced_waiter(self):
        """Stress regression: when the leader's compute raises, every
        coalesced follower must be released with that error — none may
        hang on the in-flight slot — and the error must never be cached
        (the next round's leader recomputes cleanly)."""
        cache = ResultCache(max_size=4)
        rounds, followers = 20, 6
        outcomes: list[str] = []
        outcomes_lock = threading.Lock()

        for round_index in range(rounds):
            release = threading.Event()
            key = f"key-{round_index % 2}"  # keys are reused across rounds

            def compute():
                release.wait(5.0)
                raise RuntimeError(f"boom-{round_index}")

            def worker():
                try:
                    cache.get_or_compute(key, compute)
                except RuntimeError as exc:
                    with outcomes_lock:
                        outcomes.append(str(exc))

            threads = [
                threading.Thread(target=worker) for _ in range(followers)
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 5.0
            expected = (round_index + 1) * (followers - 1)
            while (
                cache.stats().coalesced < expected
                and time.monotonic() < deadline
            ):
                time.sleep(0.001)
            release.set()
            for thread in threads:
                thread.join(5.0)
                assert not thread.is_alive(), "waiter leaked on compute raise"
            # The failure was never cached: the key reads as absent.
            assert cache.get(key) == (False, None)

        assert outcomes == [
            f"boom-{r}" for r in range(rounds) for _ in range(followers)
        ]
        stats = cache.stats()
        assert stats.inflight == 0
        # A clean compute on a previously failing key succeeds normally.
        assert cache.get_or_compute("key-0", lambda: "ok") == ("ok", "miss")

    def test_hit_ratio(self):
        cache = ResultCache(max_size=4)
        assert cache.stats().hit_ratio == 0.0
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        assert cache.stats().hit_ratio == pytest.approx(2 / 3)
