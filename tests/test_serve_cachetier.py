"""Tests for the shared cache tier: backends, breaker degradation, keys."""

from __future__ import annotations

import json

import pytest

from repro.serve.breaker import CircuitBreaker
from repro.serve.cachetier import (
    CacheBackendError,
    FileBackend,
    InMemoryBackend,
    SharedCacheTier,
    tier_key,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestInMemoryBackend:
    def test_put_get_delete(self):
        backend = InMemoryBackend()
        backend.put("k", b"v", tags=("P1",))
        assert backend.get("k") == b"v"
        backend.delete("k")
        assert backend.get("k") is None

    def test_purge_tags_is_selective(self):
        backend = InMemoryBackend()
        backend.put("a", b"1", tags=("P1", "P2"))
        backend.put("b", b"2", tags=("P3",))
        assert backend.purge_tags(["P2"]) == 1
        assert backend.get("a") is None
        assert backend.get("b") == b"2"

    def test_injected_outage(self):
        backend = InMemoryBackend()
        backend.fail(2)
        with pytest.raises(CacheBackendError):
            backend.get("k")
        with pytest.raises(CacheBackendError):
            backend.get("k")
        assert backend.get("k") is None  # healed
        backend.set_down(True)
        with pytest.raises(CacheBackendError):
            backend.put("k", b"v", tags=())
        backend.set_down(False)
        backend.put("k", b"v", tags=())


class TestFileBackend:
    def test_round_trip_across_instances(self, tmp_path):
        """The whole point of the file tier: a second process (here a
        second instance) sees the first one's entries."""
        first = FileBackend(tmp_path / "tier")
        first.put("key-1", b"payload", tags=("P1",))
        second = FileBackend(tmp_path / "tier")
        assert second.get("key-1") == b"payload"
        assert second.entry_count() == 1

    def test_corrupt_entry_reads_as_miss_and_self_heals(self, tmp_path):
        backend = FileBackend(tmp_path / "tier")
        backend.put("key-1", b"payload", tags=())
        entry = next((tmp_path / "tier").glob("*.cache"))
        entry.write_bytes(b"{definitely not json")
        assert backend.get("key-1") is None
        assert not entry.exists()  # deleted, not left to fail forever

    def test_checksum_mismatch_is_a_miss(self, tmp_path):
        backend = FileBackend(tmp_path / "tier")
        backend.put("key-1", b"payload", tags=())
        entry = next((tmp_path / "tier").glob("*.cache"))
        envelope = json.loads(entry.read_bytes())
        envelope["payload"] = b"tampered".hex()
        entry.write_text(json.dumps(envelope))
        assert backend.get("key-1") is None

    def test_purge_tags(self, tmp_path):
        backend = FileBackend(tmp_path / "tier")
        backend.put("a", b"1", tags=("P1",))
        backend.put("b", b"2", tags=("P2",))
        assert backend.purge_tags(["P1"]) == 1
        assert backend.entry_count() == 1
        assert backend.get("b") == b"2"


class TestSharedCacheTier:
    def test_json_round_trip(self):
        tier = SharedCacheTier(InMemoryBackend())
        assert tier.get("k") is None
        assert tier.put("k", {"answer": 42}, tags=("P1",))
        assert tier.get("k") == {"answer": 42}
        stats = tier.stats()
        assert stats.gets == 2 and stats.hits == 1 and stats.puts == 1

    def test_outage_degrades_to_miss_never_raises(self):
        backend = InMemoryBackend()
        tier = SharedCacheTier(backend)
        backend.set_down(True)
        assert tier.get("k") is None
        assert not tier.put("k", {"v": 1})
        assert tier.purge_products(["P1"]) == -1
        assert tier.stats().errors == 3

    def test_breaker_opens_and_skips(self):
        clock = FakeClock()
        backend = InMemoryBackend()
        tier = SharedCacheTier(
            backend,
            breaker=CircuitBreaker(
                failure_threshold=2, recovery_time=10.0, clock=clock
            ),
        )
        backend.set_down(True)
        tier.get("k")
        tier.get("k")
        assert tier.stats().breaker_state == "open"
        operations_before = backend.operations
        tier.get("k")  # skipped outright — the backend is never touched
        assert backend.operations == operations_before
        assert tier.stats().skipped == 1

        # Heal the backend; after recovery_time the half-open probe
        # succeeds and the tier re-attaches.
        backend.set_down(False)
        clock.now = 11.0
        tier.put("k", {"v": 1})
        assert tier.stats().breaker_state == "closed"
        assert tier.get("k") == {"v": 1}

    def test_undecodable_value_is_deleted_and_missed(self):
        backend = InMemoryBackend()
        tier = SharedCacheTier(backend)
        backend.put("k", b"\xff not json", tags=())
        assert tier.get("k") is None
        assert backend.get("k") is None


class TestTierKey:
    def test_deterministic_across_calls(self):
        a = tier_key("chain-token", "select", "P1", 3, 1.0)
        b = tier_key("chain-token", "select", "P1", 3, 1.0)
        assert a == b and len(a) == 64

    def test_any_part_changes_the_key(self):
        base = tier_key("chain", "select", "P1", 3)
        assert tier_key("other-chain", "select", "P1", 3) != base
        assert tier_key("chain", "narrow", "P1", 3) != base
        assert tier_key("chain", "select", "P2", 3) != base
        assert tier_key("chain", "select", "P1", 4) != base

    def test_parts_do_not_collide_by_concatenation(self):
        assert tier_key("c", "ab", "c") != tier_key("c", "a", "bc")
