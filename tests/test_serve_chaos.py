"""Small-scale runs of the chaos harness (the full suite is `make chaos-smoke`)."""

from __future__ import annotations

import pytest

from repro.resilience.faults import FaultSpec
from repro.serve.chaos import (
    ChaosScenario,
    default_suite,
    faulted_stage,
    run_scenario,
)


class TestScenarioValidation:
    def test_rejects_zero_burst(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="bad", burst=0)

    def test_rejects_conflicting_midway_actions(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="bad", reload_midway=True, drain_midway=True)

    def test_default_suite_has_the_acceptance_scenario(self):
        names = [scenario.name for scenario in default_suite()]
        assert "16x-burst-one-failing-backend" in names


class TestFaultedStage:
    def test_crash_fault_raises(self):
        stage = faulted_stage("milp", FaultSpec(kind="crash"))
        with pytest.raises(Exception, match="injected"):
            stage(None, 1, None, None)


class TestScenarioRuns:
    def test_overload_burst_with_failing_backend(self):
        """A scaled-down cut of the acceptance scenario: must pass its SLOs."""
        scenario = ChaosScenario(
            name="small-burst-failing-milp",
            burst=24,
            max_pending=4,
            workers=2,
            deadline_ms=30_000.0,
            backend_faults={"milp": FaultSpec(kind="crash")},
            expect_shed=True,
        )
        report = run_scenario(scenario)
        assert report.passed, report.summary()
        assert report.ok >= 1
        assert report.shed >= 1
        assert report.transport_errors == 0
        assert report.unavailable == 0
        assert report.breaker_transitions >= 1
        assert report.shed_server_p99_ms <= scenario.shed_p99_budget_ms

    def test_within_capacity_never_sheds(self):
        scenario = ChaosScenario(
            name="small-within-capacity",
            burst=4,
            max_pending=8,
            workers=2,
            endpoint="select",
            deadline_ms=30_000.0,
            expect_shed=False,
        )
        report = run_scenario(scenario)
        assert report.passed, report.summary()
        assert report.ok == scenario.burst
        assert report.shed == 0

    def test_drain_scenario_completes_inflight(self):
        scenario = ChaosScenario(
            name="small-drain",
            burst=6,
            max_pending=8,
            workers=2,
            endpoint="select",
            deadline_ms=30_000.0,
            expect_shed=False,
            drain_midway=True,
        )
        report = run_scenario(scenario)
        assert report.passed, report.summary()
        assert report.drained is True
