"""Small-scale runs of the chaos harness (the full suite is `make chaos-smoke`)."""

from __future__ import annotations

import pytest

from repro.resilience.faults import FaultSpec
from repro.serve.chaos import (
    ChaosScenario,
    DurabilityScenario,
    all_scenarios,
    default_suite,
    durability_suite,
    faulted_stage,
    run_durability_scenario,
    run_scenario,
)


class TestScenarioValidation:
    def test_rejects_zero_burst(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="bad", burst=0)

    def test_rejects_conflicting_midway_actions(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="bad", reload_midway=True, drain_midway=True)

    def test_default_suite_has_the_acceptance_scenario(self):
        names = [scenario.name for scenario in default_suite()]
        assert "16x-burst-one-failing-backend" in names


class TestFaultedStage:
    def test_crash_fault_raises(self):
        stage = faulted_stage("milp", FaultSpec(kind="crash"))
        with pytest.raises(Exception, match="injected"):
            stage(None, 1, None, None)


class TestScenarioRuns:
    def test_overload_burst_with_failing_backend(self):
        """A scaled-down cut of the acceptance scenario: must pass its SLOs."""
        scenario = ChaosScenario(
            name="small-burst-failing-milp",
            burst=24,
            max_pending=4,
            workers=2,
            deadline_ms=30_000.0,
            backend_faults={"milp": FaultSpec(kind="crash")},
            expect_shed=True,
        )
        report = run_scenario(scenario)
        assert report.passed, report.summary()
        assert report.ok >= 1
        assert report.shed >= 1
        assert report.transport_errors == 0
        assert report.unavailable == 0
        assert report.breaker_transitions >= 1
        assert report.shed_server_p99_ms <= scenario.shed_p99_budget_ms

    def test_within_capacity_never_sheds(self):
        scenario = ChaosScenario(
            name="small-within-capacity",
            burst=4,
            max_pending=8,
            workers=2,
            endpoint="select",
            deadline_ms=30_000.0,
            expect_shed=False,
        )
        report = run_scenario(scenario)
        assert report.passed, report.summary()
        assert report.ok == scenario.burst
        assert report.shed == 0

    def test_drain_scenario_completes_inflight(self):
        scenario = ChaosScenario(
            name="small-drain",
            burst=6,
            max_pending=8,
            workers=2,
            endpoint="select",
            deadline_ms=30_000.0,
            expect_shed=False,
            drain_midway=True,
        )
        report = run_scenario(scenario)
        assert report.passed, report.summary()
        assert report.drained is True


class TestDurabilityScenarios:
    """In-process durability scenarios (kill9 needs a child process and
    runs under `make recovery-smoke`; the rest are fast enough here)."""

    def test_suite_covers_all_faults(self):
        kinds = {scenario.kind for scenario in durability_suite()}
        assert kinds == {
            "kill9", "torn-wal", "disk-full", "tier-outage", "shard-kill",
            "replica-failover",
        }
        names = {s.name for s in all_scenarios()}
        # Both suites are reachable from the CLI's combined listing.
        assert "kill9-mid-ingest" in names
        assert "16x-burst-one-failing-backend" in names

    def test_torn_wal_write_recovers_intact_prefix(self):
        report = run_durability_scenario(
            DurabilityScenario(name="torn", kind="torn-wal", deltas=3)
        )
        assert report.passed, report.summary()
        assert report.details["torn_bytes"] > 0

    def test_disk_full_rejects_without_losing_state(self):
        report = run_durability_scenario(
            DurabilityScenario(name="full", kind="disk-full")
        )
        assert report.passed, report.summary()

    def test_tier_outage_never_fails_requests(self):
        report = run_durability_scenario(
            DurabilityScenario(name="outage", kind="tier-outage")
        )
        assert report.passed, report.summary()

    def test_failed_report_prints_replay_seed(self):
        from repro.serve.chaos import DurabilityReport

        report = DurabilityReport(
            scenario="torn", seed=13, violations=["acked delta lost"]
        )
        assert not report.passed
        assert "seed=13" in report.summary()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            run_durability_scenario(
                DurabilityScenario(name="bad", kind="nonsense")
            )
