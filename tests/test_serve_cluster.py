"""End-to-end cluster tests: byte-identity vs single-process, failover.

The acceptance bar for the cluster is behavioural transparency: the
same corpus served with ``--shards 4`` must answer ``/v1/select`` and
``/v1/narrow`` byte-identically to the single-process server (modulo
provenance/timing), fan ingest to every holder, and convert a crashed
shard into 503 + Retry-After for that shard's targets only.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.data.instances import build_instance
from repro.data.io import save_corpus
from repro.data.synthetic import generate_corpus
from repro.serve.admission import AdmissionController
from repro.serve.cluster import (
    ClusterConfig,
    ClusterGateway,
    HashRing,
    HintQueue,
    ServingCluster,
    ShardClient,
    partition_corpus,
)
from repro.serve.cluster.proto import (
    FrameError,
    read_frame_async,
    write_frame_async,
)
from repro.serve.engine import SelectionEngine
from repro.serve.http import make_server
from repro.serve.store import ItemStore
from repro.serve.supervisor import RestartPolicy
from repro.serve.wal import WriteAheadLog

SHARDS = 4


def _post(base: str, path: str, body: dict, timeout: float = 120.0):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base: str, path: str, timeout: float = 60.0, headers: dict | None = None):
    request = urllib.request.Request(base + path, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=11)


@pytest.fixture(scope="module")
def corpus_path(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster") / "corpus.jsonl"
    save_corpus(corpus, path)
    return path


@pytest.fixture(scope="module")
def viable_targets(corpus):
    return [
        p.product_id
        for p in corpus.products
        if build_instance(corpus, p.product_id, 10, min_reviews=3)
    ]


@pytest.fixture(scope="module")
def single_base(corpus):
    """The single-process reference server, in-process."""
    engine = SelectionEngine(ItemStore(corpus), workers=2)
    server = make_server(engine, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()
    engine.close()


@pytest.fixture(scope="module")
def cluster(corpus_path, tmp_path_factory):
    config = ClusterConfig(
        corpus_path=corpus_path,
        shards=SHARDS,
        state_dir=tmp_path_factory.mktemp("cluster-state"),
        engine_options={"workers": 2, "snapshot_every": 2},
        restart_policy=RestartPolicy(base_delay=0.05, max_restarts=10),
    )
    with ServingCluster(config) as running:
        yield running


class TestByteIdentity:
    def test_select_and_narrow_match_single_process(
        self, cluster, single_base, viable_targets
    ):
        """--shards 4 responses == --shards 1 responses, result-for-result."""
        checked = 0
        for target in viable_targets[:5] + [None]:
            for path, body in (
                ("/v1/select", {"target": target, "mu": 0.15}),
                ("/v1/select", {"target": target, "m": 2, "scheme": "binary"}),
                ("/v1/narrow", {"target": target, "k": 2}),
            ):
                if target is None:
                    body = {k: v for k, v in body.items() if k != "target"}
                single_status, single_body = _post(single_base, path, body)
                cluster_status, cluster_body = _post(
                    cluster.base_url, path, body
                )
                assert single_status == cluster_status == 200, (path, body)
                # Provenance differs (which process solved it, wall
                # times); the result block must be byte-identical.
                assert json.dumps(single_body["result"], sort_keys=True) == (
                    json.dumps(cluster_body["result"], sort_keys=True)
                ), (path, body)
                checked += 1
        assert checked == 18

    def test_error_responses_match_single_process(self, cluster, single_base):
        for path, body in (
            ("/v1/select", {"target": "NOPE"}),
            ("/v1/select", {"bogus": 1}),
            ("/v1/select", {"m": 0}),
            ("/v1/narrow", {"k": 0}),
            ("/v1/ingest", {}),
            ("/v1/ingest", {"reviews": "nope"}),
        ):
            single_status, single_body = _post(single_base, path, body)
            cluster_status, cluster_body = _post(cluster.base_url, path, body)
            assert single_status == cluster_status, (path, body)
            assert single_body["error"] == cluster_body["error"], (path, body)


class TestGatewayEndpoints:
    def test_healthz_aggregates_all_shards(self, cluster):
        status, raw = _get(cluster.base_url, "/healthz")
        payload = json.loads(raw)
        assert status == 200
        assert payload["status"] == "ok"
        assert sorted(payload["shards"]) == [str(i) for i in range(SHARDS)]
        assert payload["ring"]["shards"] == SHARDS

    def test_metrics_json_and_prometheus(self, cluster):
        status, raw = _get(cluster.base_url, "/metrics")
        payload = json.loads(raw)
        assert status == 200
        assert set(payload) == {"gateway", "shards"}
        counters = payload["gateway"]["counters"]
        assert any(k.startswith("repro_shard_requests_total") for k in counters)
        assert "repro_shard_restart_total" in payload["gateway"]["gauges"]
        assert "repro_gateway_queue_depth" in payload["gateway"]["gauges"]
        status, raw = _get(cluster.base_url, "/metrics?format=prometheus")
        text = raw.decode()
        assert status == 200
        assert "repro_shard_requests_total" in text
        for shard in range(SHARDS):
            assert f"# ---- shard {shard} ----" in text

    def test_ingest_fans_out_to_every_holder(self, cluster, viable_targets):
        target = viable_targets[0]
        holders = cluster.plan.holders(target)
        record = {
            "review_id": "NEW-E2E-1",
            "product_id": target,
            "rating": 5.0,
            "text": "fantastic value",
            "mentions": [{"aspect": "price", "sentiment": 1}],
        }
        status, ack = _post(cluster.base_url, "/v1/ingest", {"reviews": [record]})
        assert status == 200
        assert ack["added"] == 1
        assert ack["affected"] == [target]
        assert sorted(ack["shards"]) == sorted(str(s) for s in holders)
        status, again = _post(
            cluster.base_url, "/v1/ingest", {"reviews": [record]}
        )
        assert status == 409

    def test_ingest_unknown_product_is_400(self, cluster):
        status, body = _post(
            cluster.base_url,
            "/v1/ingest",
            {"reviews": [{"review_id": "X", "product_id": "NOPE"}]},
        )
        assert status == 400
        assert "unknown product" in body["error"]

    def test_snapshot_fans_out(self, cluster):
        status, body = _post(cluster.base_url, "/v1/snapshot", {})
        assert status == 200
        assert sorted(body["shards"]) == [str(i) for i in range(SHARDS)]

    def test_reload_is_501_in_cluster_mode(self, cluster):
        status, body = _post(cluster.base_url, "/v1/reload", {"path": "x"})
        assert status == 501

    def test_unknown_endpoint_and_method_mismatch(self, cluster):
        status, _ = _get(cluster.base_url, "/nope")
        assert status == 404
        status, _ = _get(cluster.base_url, "/v1/select")
        assert status == 405
        status, _ = _post(cluster.base_url, "/healthz", {})
        assert status == 405

    def test_bad_deadline_header_is_400(self, cluster):
        request = urllib.request.Request(
            cluster.base_url + "/v1/select",
            data=b"{}",
            headers={"X-Deadline-Ms": "soon"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestShardFailover:
    """SIGKILL one shard: its targets 503, others serve, then it recovers.

    Runs last in the module (classes execute in file order) so the
    restart does not race the byte-identity assertions above.
    """

    def test_kill_one_shard_leaves_others_serving(self, cluster, viable_targets):
        ring = cluster.ring
        by_shard: dict[int, str] = {}
        for target in viable_targets:
            by_shard.setdefault(ring.route(target), target)
        assert len(by_shard) >= 2, "toy corpus must span shards"
        victim_shard, victim_target = next(iter(by_shard.items()))
        other_shard, other_target = next(
            (s, t) for s, t in by_shard.items() if s != victim_shard
        )

        cluster.kill_shard(victim_shard)
        # During the outage: victim targets answer 503 + Retry-After
        # (never a raw 500), other shards keep answering 200.
        saw_unavailable = False
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, body = _post(
                cluster.base_url, "/v1/select", {"target": victim_target}
            )
            assert status in (200, 503), body
            if status == 503:
                saw_unavailable = True
                assert body["reason"] == "shard_unavailable"
                assert "retry_after" in body
                status, _ = _post(
                    cluster.base_url, "/v1/select", {"target": other_target}
                )
                assert status == 200
            else:
                break
            time.sleep(0.2)
        assert saw_unavailable, "kill was absorbed before any request saw it"

        # Recovery: the supervisor restarts the worker, which reopens
        # its own snapshot+WAL state and serves again.
        deadline = time.monotonic() + 30.0
        status = None
        while time.monotonic() < deadline:
            status, _ = _post(
                cluster.base_url, "/v1/select", {"target": victim_target}
            )
            if status == 200:
                break
            time.sleep(0.2)
        assert status == 200
        assert cluster.restarts()[victim_shard] >= 1
        status, raw = _get(cluster.base_url, "/healthz")
        payload = json.loads(raw)
        recovery = payload["shards"][str(victim_shard)].get("recovery", {})
        assert recovery.get("restarts", 0) >= 1


class TestGatewayUnits:
    """Direct gateway checks that need no running shard processes."""

    @pytest.fixture()
    def parts(self, corpus):
        ring = HashRing(1)
        plan = partition_corpus(corpus, ring)
        client = ShardClient(0, "127.0.0.1", lambda: None)
        return corpus, plan, ring, [client]

    def test_default_target_matches_store(self, parts):
        corpus, plan, ring, clients = parts
        gateway = ClusterGateway(corpus, plan, ring, clients)
        store = ItemStore(corpus)
        assert gateway._default_target(10, 3) == store.default_target(10, 3)
        assert gateway._default_target(10, 3) == store.default_target(10, 3)

    def test_admission_sheds_before_any_dispatch(self, parts):
        corpus, plan, ring, clients = parts
        admission = AdmissionController(max_pending=1)
        gateway = ClusterGateway(corpus, plan, ring, clients, admission=admission)
        with admission.admit(0.0):  # saturate the queue
            status, payload, headers = asyncio.run(
                gateway._handle_query("select", {}, None)
            )
        assert status == 429
        assert payload["reason"] == "queue_full"
        assert headers and "Retry-After" in headers

    def test_unreachable_shard_is_503_not_500(self, parts):
        corpus, plan, ring, clients = parts
        gateway = ClusterGateway(corpus, plan, ring, clients)
        status, payload, headers = asyncio.run(
            gateway._handle_query(
                "select", {"target": corpus.products[0].product_id}, None
            )
        )
        assert status == 503
        assert payload["reason"] == "shard_unavailable"
        assert headers and "Retry-After" in headers

    def test_hints_without_journal_are_rejected(self, parts, tmp_path):
        """A hint needs the journal's delta_seq to replay idempotently."""
        corpus, plan, ring, clients = parts
        hints = HintQueue(tmp_path)
        with pytest.raises(ValueError, match="journal"):
            ClusterGateway(corpus, plan, ring, clients, hints=hints)
        hints.close()


def _review_record(product_id: str, review_id: str) -> dict:
    return {
        "review_id": review_id,
        "product_id": product_id,
        "rating": 4.0,
        "text": "solid value and battery",
        "mentions": [{"aspect": "value", "sentiment": 1}],
    }


async def _fake_shard(events: list, delays: list[float]):
    """An in-loop shard stub: acks ingest frames, recording start/end.

    ``delays`` is consumed one entry per frame (0 once exhausted), so a
    test can make the first delta slow and observe what the gateway
    lets overlap with it.
    """

    async def handler(reader, writer):
        while True:
            try:
                message = await read_frame_async(reader)
            except (FrameError, asyncio.IncompleteReadError, OSError):
                break
            seq = message.get("delta_seq")
            events.append(("start", seq))
            await asyncio.sleep(delays.pop(0) if delays else 0.0)
            events.append(("end", seq))
            reviews = message.get("reviews", [])
            await write_frame_async(
                writer,
                {
                    "status": 200,
                    "payload": {
                        "added": len(reviews),
                        "affected": sorted(
                            {r["product_id"] for r in reviews}
                        ),
                    },
                },
            )
        writer.close()

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


class TestIngestOrderingAndStall:
    """Replication-ordering gateway checks against fake shard stubs."""

    def test_same_product_ingests_apply_in_delta_seq_order(
        self, corpus, tmp_path
    ):
        """Concurrent same-product deltas reach the shard serially.

        Without per-product serialisation two concurrent ingests can
        reach a shard's replicas over different pooled connections in
        opposite orders, breaking failover byte-identity even though no
        data is lost.
        """

        async def scenario():
            events: list = []
            server, port = await _fake_shard(events, [0.3])
            ring = HashRing(1)
            plan = partition_corpus(corpus, ring)
            journal = WriteAheadLog(tmp_path / "journal.wal")
            gateway = ClusterGateway(
                corpus, plan, ring,
                [ShardClient(0, "127.0.0.1", lambda: port)],
                hints=HintQueue(tmp_path / "hints"),
                journal=journal,
            )
            pid = corpus.products[0].product_id
            first = asyncio.create_task(
                gateway._handle_ingest(
                    {"reviews": [_review_record(pid, "ORD-1")]}
                )
            )
            await asyncio.sleep(0.05)  # first is mid-fan-out on the stub
            second = asyncio.create_task(
                gateway._handle_ingest(
                    {"reviews": [_review_record(pid, "ORD-2")]}
                )
            )
            status_1, _, _ = await first
            status_2, _, _ = await second
            assert status_1 == 200 and status_2 == 200
            journalled = [
                record["delta_seq"] for _, record in journal.replay(0)
            ]
            server.close()
            await server.wait_closed()
            return events, journalled

        events, journalled = asyncio.run(scenario())
        # The second delta's fan-out waited for the first to finish and
        # journal: no interleaving at the shard, and the journal replay
        # stream carries the deltas in delta_seq order.
        assert events == [("start", 1), ("end", 1), ("start", 2), ("end", 2)]
        assert journalled == [1, 2]

    def test_stall_drains_inflight_ingest_before_returning(
        self, corpus, tmp_path
    ):
        """The resize stall must not leave an admitted ingest un-journalled.

        An ingest that passed the stall check appends to the journal
        only after its fan-out completes; the catch-up replay may only
        run once that append has landed, or an acknowledged delta never
        reaches the resize-built workers.
        """

        async def scenario():
            events: list = []
            server, port = await _fake_shard(events, [0.3])
            ring = HashRing(1)
            plan = partition_corpus(corpus, ring)
            journal = WriteAheadLog(tmp_path / "journal.wal")
            gateway = ClusterGateway(
                corpus, plan, ring,
                [ShardClient(0, "127.0.0.1", lambda: port)],
                hints=HintQueue(tmp_path / "hints"),
                journal=journal,
            )
            pid = corpus.products[0].product_id
            inflight = asyncio.create_task(
                gateway._handle_ingest(
                    {"reviews": [_review_record(pid, "STALL-1")]}
                )
            )
            await asyncio.sleep(0.05)  # in flight, past the stall check
            await gateway.stall_ingest_and_drain()
            # The drain waited out the in-flight ingest: its delta is in
            # the journal before any catch-up replay would read it.
            assert [
                record["delta_seq"] for _, record in journal.replay(0)
            ] == [1]
            status, _, _ = await inflight
            assert status == 200
            status, payload, headers = await gateway._handle_ingest(
                {"reviews": [_review_record(pid, "STALL-2")]}
            )
            assert status == 503
            assert payload["reason"] == "resizing"
            assert headers and "Retry-After" in headers
            gateway.set_ingest_stall(False)
            status, _, _ = await gateway._handle_ingest(
                {"reviews": [_review_record(pid, "STALL-2")]}
            )
            assert status == 200
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_backlogged_shard_is_hinted_not_written_live(
        self, corpus, tmp_path
    ):
        """A shard owing hints takes new deltas through its queue.

        Writing live past an undrained backlog would apply the newest
        delta before the queued ones on that replica alone — the same
        divergence the hint queue exists to prevent.
        """

        async def scenario():
            events_0: list = []
            events_1: list = []
            server_0, port_0 = await _fake_shard(events_0, [])
            server_1, port_1 = await _fake_shard(events_1, [])
            ring = HashRing(2)
            plan = partition_corpus(corpus, ring, replicas=2)
            pid = corpus.products[0].product_id
            hints = HintQueue(tmp_path / "hints")
            # Shard 1 is owed an earlier delta it never saw.
            hints.add(1, [_review_record(pid, "BACK-0")], delta_seq=1)
            gateway = ClusterGateway(
                corpus, plan, ring,
                [
                    ShardClient(0, "127.0.0.1", lambda: port_0),
                    ShardClient(1, "127.0.0.1", lambda: port_1),
                ],
                hints=hints,
                journal=WriteAheadLog(tmp_path / "journal.wal"),
            )
            status, payload, _ = await gateway._handle_ingest(
                {"reviews": [_review_record(pid, "BACK-1")]}
            )
            assert status == 200, payload
            assert payload["hinted"] == [1]
            assert payload["delta_seq"] == 2
            # The new delta joined the queue behind the backlog instead
            # of reaching the shard live and out of order.
            assert hints.depth(1) == 2
            assert not events_1
            assert events_0  # the live replica acked the delta
            for server in (server_0, server_1):
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
