"""End-to-end durability: WAL-backed ingest, recovery, tier, HTTP codes.

Everything here runs against real engines over real state directories;
the HTTP tests boot a live server the same way test_serve_http does.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.data.io import save_corpus
from repro.data.synthetic import generate_corpus
from repro.serve.cachetier import InMemoryBackend, SharedCacheTier
from repro.serve.engine import SelectionEngine, build_durable_engine
from repro.serve.http import make_server
from repro.serve.store import DeltaValidationError, ItemStore


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=3)


@pytest.fixture(scope="module")
def corpus_path(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("corpus") / "toy.jsonl"
    save_corpus(corpus, path)
    return path


def _record(n: int, product_id: str) -> dict:
    return {
        "review_id": f"delta-{n}",
        "product_id": product_id,
        "reviewer_id": f"u{n}",
        "rating": 4.0,
        "text": f"delta review {n} praising the battery",
        "mentions": [],
    }


class TestDurableIngest:
    def test_ack_carries_wal_seq_and_new_version(self, corpus_path, tmp_path):
        engine = build_durable_engine(
            tmp_path / "state", corpus_path=corpus_path, workers=1
        )
        try:
            product = engine.store.corpus.products[0].product_id
            ack = engine.ingest_reviews([_record(1, product)])
            assert ack["wal_seq"] == 1
            assert ack["added"] == 1
            assert ack["affected"] == [product]
            assert ack["version"] == engine.store.version
            assert ack["version"].startswith("g2-")
        finally:
            engine.close()

    def test_restart_reproduces_acked_state_byte_identically(
        self, corpus_path, tmp_path
    ):
        state = tmp_path / "state"
        engine = build_durable_engine(
            state, corpus_path=corpus_path, workers=1
        )
        product = engine.store.corpus.products[0].product_id
        acked = [
            engine.ingest_reviews([_record(n, product)])["version"]
            for n in range(1, 4)
        ]
        engine.close()

        recovered = build_durable_engine(
            state, corpus_path=corpus_path, workers=1, restarts=1
        )
        try:
            assert recovered.store.version == acked[-1]
            assert recovered.recovery.mode == "cold+wal"
            assert recovered.recovery.replayed_deltas == 3
            assert recovered.recovery.restarts == 1
        finally:
            recovered.close()

    def test_snapshot_compacts_wal_and_speeds_recovery(
        self, corpus_path, tmp_path
    ):
        state = tmp_path / "state"
        engine = build_durable_engine(
            state, corpus_path=corpus_path, workers=1
        )
        product = engine.store.corpus.products[0].product_id
        for n in range(1, 3):
            engine.ingest_reviews([_record(n, product)])
        info = engine.snapshot()
        assert info.wal_seq == 2
        assert engine.wal.last_seq == 2 and len(engine.wal) == 0  # compacted
        engine.ingest_reviews([_record(3, product)])
        expected = engine.store.version
        engine.close()

        recovered = build_durable_engine(state, corpus_path=corpus_path)
        try:
            assert recovered.recovery.mode == "snapshot+wal"
            assert recovered.recovery.replayed_deltas == 1  # only the tail
            assert recovered.store.version == expected
        finally:
            recovered.close()

    def test_auto_snapshot_every_n_deltas(self, corpus_path, tmp_path):
        engine = build_durable_engine(
            tmp_path / "state",
            corpus_path=corpus_path,
            snapshot_every=2,
            workers=1,
        )
        try:
            product = engine.store.corpus.products[0].product_id
            engine.ingest_reviews([_record(1, product)])
            assert engine.snapshots.list_snapshots() == []
            engine.ingest_reviews([_record(2, product)])
            assert len(engine.snapshots.list_snapshots()) == 1
        finally:
            engine.close()

    def test_duplicate_review_is_a_conflict(self, corpus_path, tmp_path):
        engine = build_durable_engine(
            tmp_path / "state", corpus_path=corpus_path, workers=1
        )
        try:
            product = engine.store.corpus.products[0].product_id
            engine.ingest_reviews([_record(1, product)])
            with pytest.raises(DeltaValidationError) as excinfo:
                engine.ingest_reviews([_record(1, product)])
            assert excinfo.value.conflict
            # The rejected batch never reached the WAL.
            assert engine.wal.last_seq == 1
        finally:
            engine.close()


class TestSelectiveInvalidation:
    def test_delta_outside_instance_leaves_entry_warm(self, corpus):
        """Generation-chained invalidation: a delta against a product the
        cached instance does not contain leaves the entry servable."""
        from repro.core.problem import SelectionConfig

        store = ItemStore(corpus)
        engine = SelectionEngine(
            store, workers=1, tier=SharedCacheTier(InMemoryBackend())
        )
        try:
            first = engine.select(m=3)
            target = first.result["target"]
            assert first.provenance.cache == "miss"
            artifacts = store.artifacts(
                target, SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)
            )
            instance_ids = {target} | set(artifacts.comparative_ids)
            outside = next(
                (
                    p.product_id
                    for p in corpus.products
                    if p.product_id not in instance_ids
                ),
                None,
            )
            if outside is None:
                pytest.skip("every corpus product is inside the instance")
            ack = engine.ingest_reviews([_record(800, outside)])
            assert ack["cache_evicted"] == 0
            again = engine.select(m=3)
            assert again.provenance.cache == "hit"
            assert again.result == first.result
        finally:
            engine.close()

    def test_delta_on_instance_product_evicts(self, corpus):
        store = ItemStore(corpus)
        backend = InMemoryBackend()
        engine = SelectionEngine(
            store, workers=1, tier=SharedCacheTier(backend)
        )
        try:
            first = engine.select(m=3)
            target = first.result["target"]
            assert engine.select(m=3).provenance.cache == "hit"
            ack = engine.ingest_reviews([_record(900, target)])
            assert ack["cache_evicted"] >= 1
            after = engine.select(m=3)
            # New generation: the old entry is unreachable and the
            # request re-solves against the delta'd corpus.
            assert after.provenance.cache == "miss"
            assert after.provenance.corpus_version == ack["version"]
        finally:
            engine.close()


class TestSharedTierAcrossRestarts:
    def test_file_tier_survives_engine_restart(self, corpus_path, tmp_path):
        state = tmp_path / "state"
        engine = build_durable_engine(
            state, corpus_path=corpus_path, cache_tier="file", workers=1
        )
        first = engine.select(m=3)
        assert first.provenance.cache == "miss"
        assert engine.tier.stats().puts == 1
        engine.close()

        recovered = build_durable_engine(
            state, corpus_path=corpus_path, cache_tier="file", workers=1
        )
        try:
            again = recovered.select(m=3)
            # Local LRU died with the process; the shared tier answers.
            assert again.provenance.cache == "tier"
            assert again.result == first.result
            assert recovered.tier.stats().hits == 1
        finally:
            recovered.close()


@pytest.fixture(scope="module")
def served(corpus_path, tmp_path_factory):
    """(base_url, engine) for a live durable server."""
    state = tmp_path_factory.mktemp("served-state")
    engine = build_durable_engine(
        state, corpus_path=corpus_path, cache_tier="memory", workers=2
    )
    server = make_server(engine, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", engine
    server.shutdown()
    server.server_close()
    engine.close()


def _post(url: str, body: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post_error(url: str, body: dict):
    try:
        _post(url, body)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    pytest.fail("expected an HTTP error")


class TestIngestHTTP:
    def test_ack_then_duplicate_conflict(self, served):
        base, engine = served
        product = engine.store.corpus.products[-1].product_id
        status, ack = _post(
            f"{base}/v1/ingest", {"reviews": [_record(100, product)]}
        )
        assert status == 200
        assert ack["wal_seq"] >= 1
        code, body = _post_error(
            f"{base}/v1/ingest", {"reviews": [_record(100, product)]}
        )
        assert code == 409
        assert "delta-100" in body["error"]

    def test_malformed_batches_are_400(self, served):
        base, _ = served
        for bad in (
            {},
            {"reviews": []},
            {"reviews": "not-a-list"},
            {"reviews": [{"product_id": "P1"}]},  # no review_id
            {"reviews": [{"review_id": "x", "product_id": "NO-SUCH"}]},
            {"reviews": [_record(0, "P1")], "extra": 1},
        ):
            code, _body = _post_error(f"{base}/v1/ingest", bad)
            assert code == 400, bad

    def test_healthz_reports_recovery_provenance(self, served):
        base, engine = served
        with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
            payload = json.loads(response.read())
        assert payload["recovery"] == engine.recovery.as_dict()
        assert payload["recovery"]["mode"] == "cold"

    def test_snapshot_endpoint(self, served):
        base, engine = served
        status, body = _post(f"{base}/v1/snapshot", {})
        assert status == 200
        assert body["version"] == engine.store.version
        assert (engine.snapshots.root / body["path"].split("/")[-1]).exists()

    def test_reload_of_corrupt_corpus_is_409_not_500(self, served, tmp_path):
        """Satellite regression: a truncated/corrupt corpus file must be
        a structured validation error, never a raw 500, and the previous
        generation keeps serving."""
        base, engine = served
        before = engine.store.version
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text('{"truncated": ')
        code, body = _post_error(f"{base}/v1/reload", {"path": str(corrupt)})
        assert code == 409
        assert body["version"] == before
        assert engine.store.version == before

    def test_reload_of_missing_corpus_is_409_not_500(self, served, tmp_path):
        base, engine = served
        code, _body = _post_error(
            f"{base}/v1/reload", {"path": str(tmp_path / "nowhere.jsonl")}
        )
        assert code == 409
        assert engine.store.version  # still serving

    def test_wal_outage_is_503_with_reason(self, served):
        base, engine = served
        product = engine.store.corpus.products[0].product_id
        before = engine.store.version
        import errno

        def out_of_space(num_bytes: int) -> None:
            raise OSError(errno.ENOSPC, "no space left on device")

        engine.wal.before_write = out_of_space
        try:
            code, body = _post_error(
                f"{base}/v1/ingest", {"reviews": [_record(777, product)]}
            )
        finally:
            engine.wal.before_write = None
        assert code == 503
        assert body["reason"] == "wal_unavailable"
        assert "retry_after" in body
        # Nothing applied, nothing acked: the version is unchanged and
        # the same batch succeeds once the disk heals.
        assert engine.store.version == before
        status, _ack = _post(
            f"{base}/v1/ingest", {"reviews": [_record(777, product)]}
        )
        assert status == 200
