"""Tests for the in-process SelectionEngine."""

from __future__ import annotations

import threading

import pytest

from repro.core.problem import SelectionConfig
from repro.core.selection import make_selector
from repro.data.instances import build_instance
from repro.data.synthetic import generate_corpus
from repro.resilience.deadline import Deadline, DeadlineExceeded, deadline_scope
from repro.serve.engine import (
    EngineClosed,
    InvalidRequest,
    NarrowRequest,
    SelectionEngine,
    SelectRequest,
    selection_payload,
)
from repro.serve.store import ItemStore, UnknownTargetError


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=3)


@pytest.fixture(scope="module")
def store(corpus):
    return ItemStore(corpus)


@pytest.fixture()
def engine(store):
    engine = SelectionEngine(store, workers=2)
    yield engine
    engine.close()


class TestValidation:
    def test_bad_m(self):
        with pytest.raises(InvalidRequest):
            SelectRequest(m=0).validated()

    def test_bad_scheme(self):
        with pytest.raises(InvalidRequest, match="unknown scheme"):
            SelectRequest(scheme="quaternary").validated()

    def test_bad_algorithm(self):
        with pytest.raises(InvalidRequest, match="unknown algorithm"):
            SelectRequest(algorithm="Oracle").validated()

    def test_bad_k(self):
        with pytest.raises(InvalidRequest):
            NarrowRequest(k=0).validated()

    def test_unknown_target(self, engine):
        with pytest.raises(UnknownTargetError):
            engine.select(target="GHOST")


class TestSelect:
    def test_matches_offline_selector(self, engine, corpus):
        """The engine result equals the offline CompareSetsSelector's."""
        response = engine.select(m=3, algorithm="CompaReSetS")
        instance = build_instance(
            corpus, response.result["target"], max_comparisons=10, min_reviews=3
        )
        offline = make_selector("CompaReSetS").select(
            instance, SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)
        )
        assert response.result == selection_payload(offline)

    def test_cache_hit_on_repeat(self, engine):
        first = engine.select(m=2)
        second = engine.select(m=2)
        assert first.provenance.cache in ("miss", "hit")  # module-shared store
        assert second.provenance.cache == "hit"
        assert second.result == first.result
        assert second.provenance.backend == "CompaReSetS+"
        assert second.provenance.corpus_version == engine.store.version

    def test_warm_hit_is_fast(self, engine):
        engine.select(m=2)
        response = engine.select(m=2)
        assert response.provenance.cache == "hit"
        assert response.provenance.wall_ms < 10.0

    def test_distinct_params_are_distinct_entries(self, engine):
        a = engine.select(m=2, algorithm="Random")
        b = engine.select(m=3, algorithm="Random")
        assert a.provenance.cache == "miss" or b.provenance.cache == "miss"
        assert engine.select(m=2, algorithm="Random").provenance.cache == "hit"
        assert engine.select(m=3, algorithm="Random").provenance.cache == "hit"

    def test_select_plus_pins_algorithm(self, engine):
        response = engine.select_plus(m=2, algorithm="Random")
        assert response.result["algorithm"] == "CompaReSetS+"
        assert response.provenance.backend == "CompaReSetS+"

    def test_request_object_and_kwargs_are_exclusive(self, engine):
        with pytest.raises(TypeError):
            engine.select(SelectRequest(), m=2)

    def test_explicit_target(self, engine, store):
        target = store.default_target(10, 3)
        response = engine.select(target=target, m=2)
        assert response.result["target"] == target


class TestNarrow:
    def test_narrow_provenance(self, engine):
        response = engine.narrow(m=2, k=3)
        assert response.provenance.backend == "milp"
        assert response.provenance.proven_optimal is True
        assert response.provenance.fallback_depth == 0
        assert response.result["k"] <= 3
        assert len(response.result["core_product_ids"]) == response.result["k"]
        assert response.result["selection"]["target"] == response.result["core_product_ids"][0]

    def test_narrow_fallback_provenance(self, engine):
        """A failing first stage shows up as depth 1 + degraded."""

        def broken(weights, k, target, deadline):
            raise RuntimeError("no solver here")

        response = engine.narrow(
            NarrowRequest(m=2, k=3, stages=(("broken", broken), "greedy"))
        )
        assert response.provenance.backend == "greedy"
        assert response.provenance.fallback_depth == 1
        assert response.provenance.degraded is True
        assert response.result["attempts"][0]["status"] == "error"

    def test_narrow_cached(self, engine):
        first = engine.narrow(m=2, k=2)
        second = engine.narrow(m=2, k=2)
        assert second.provenance.cache == "hit"
        assert second.result == first.result


class TestDeadlines:
    def test_expired_deadline_maps_to_deadline_exceeded(self, store):
        engine = SelectionEngine(store, cache_size=4, workers=1)
        try:
            with pytest.raises(DeadlineExceeded):
                engine.select(
                    SelectRequest(m=6, algorithm="CompaReSetS+"),
                    deadline=Deadline.after(0.0),
                )
        finally:
            engine.close()

    def test_ambient_deadline_scope_is_honoured(self, store):
        engine = SelectionEngine(store, cache_size=4, workers=1)
        try:
            with deadline_scope(0.0):
                with pytest.raises(DeadlineExceeded):
                    engine.select(SelectRequest(m=5, algorithm="CompaReSetS"))
        finally:
            engine.close()

    def test_cached_after_deadline_miss_still_unsolved(self, store):
        """A timed-out request does not poison the cache."""
        engine = SelectionEngine(store, cache_size=4, workers=1)
        try:
            with pytest.raises(DeadlineExceeded):
                engine.select(SelectRequest(m=4), deadline=Deadline.after(0.0))
            response = engine.select(SelectRequest(m=4))
            assert response.result["selections"]
        finally:
            engine.close()


class TestConcurrency:
    def test_identical_concurrent_requests_solve_once(self, store):
        engine = SelectionEngine(store, cache_size=16, workers=4)
        try:
            responses = []
            lock = threading.Lock()

            def worker():
                response = engine.select(m=5, algorithm="CompaReSetS+")
                with lock:
                    responses.append(response)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)

            assert len(responses) == 6
            payloads = {tuple(map(tuple, r.result["selections"])) for r in responses}
            assert len(payloads) == 1
            stats = engine.cache.stats()
            assert stats.misses == 1, "single-flight must collapse to one solve"
            assert stats.hits + stats.coalesced == 5
        finally:
            engine.close()


class TestBatching:
    def test_same_target_requests_batch(self, store):
        engine = SelectionEngine(
            store, cache_size=16, workers=4, batch_window=0.1, batch_max=4
        )
        try:
            barrier = threading.Barrier(3, timeout=10.0)
            responses = {}

            def worker(m):
                barrier.wait()
                responses[m] = engine.select(m=m, algorithm="CompaReSetS")

            threads = [
                threading.Thread(target=worker, args=(m,)) for m in (1, 2, 3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)

            assert set(responses) == {1, 2, 3}
            for m, response in responses.items():
                assert all(
                    len(s) <= m for s in response.result["selections"]
                )
            stats = engine.batcher.stats()
            assert stats.submitted == 3
            assert stats.batches < 3, "same-target requests must share a batch"
        finally:
            engine.close()

    def test_cross_request_batching_provenance_and_gauges(self, store):
        """Distinct-target requests (different m, mixed batchable
        algorithms) of one generation coalesce into a GEMM-stacked group
        and say so in their provenance and the /metrics gauges."""
        engine = SelectionEngine(
            store, cache_size=16, workers=4, batch_window=0.5, batch_max=4
        )
        solo = SelectionEngine(store, cache_size=16, workers=1)
        jobs = [(1, "CompaReSetS"), (3, "CompaReSetS"), (2, "CompaReSetS+")]
        try:
            barrier = threading.Barrier(len(jobs), timeout=10.0)
            responses = {}

            def worker(m, algorithm):
                barrier.wait()
                responses[(m, algorithm)] = engine.select(m=m, algorithm=algorithm)

            threads = [
                threading.Thread(target=worker, args=job) for job in jobs
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)

            assert set(responses) == set(jobs)
            stats = engine.batcher.stats()
            assert stats.submitted == len(jobs)
            assert stats.batches < len(jobs), "requests must share a batch"

            # Batched solves are byte-identical to solo solves.
            for (m, algorithm), response in responses.items():
                reference = solo.select(m=m, algorithm=algorithm)
                assert response.result["selections"] == reference.result["selections"]

            batched = [
                response
                for response in responses.values()
                if response.provenance.batch_size is not None
                and response.provenance.batch_size >= 2
            ]
            assert batched, "no response recorded GEMM-stacked provenance"
            for response in batched:
                provenance = response.provenance
                assert provenance.batched_with == provenance.batch_size - 1
                payload = provenance.as_dict()
                assert payload["batch_size"] == provenance.batch_size
                assert payload["batched_with"] == provenance.batched_with

            gauges = engine.metrics.as_dict()["gauges"]
            assert gauges["repro_batch_submitted"] == len(jobs)
            assert gauges["repro_batch_batches"] == stats.batches
            assert gauges["repro_batch_batched_requests"] == stats.batched_requests
            assert gauges["repro_batch_largest"] >= 2
            assert gauges["repro_batch_amortisation"] > 1.0
        finally:
            engine.close()
            solo.close()


class TestLifecycle:
    def test_closed_engine_rejects_requests(self, store):
        engine = SelectionEngine(store, workers=1)
        engine.close()
        with pytest.raises(EngineClosed):
            engine.select(m=2)

    def test_metrics_populated(self, store):
        engine = SelectionEngine(store, workers=1)
        try:
            engine.select(m=2)
            engine.select(m=2)
            payload = engine.metrics.as_dict()
            assert payload["counters"]['repro_requests_total{endpoint="select"}'] == 2
            assert payload["gauges"]["repro_cache_hit_ratio"] > 0
            latency = payload["histograms"][
                'repro_request_latency_seconds{endpoint="select"}'
            ]
            assert latency["count"] == 2
        finally:
            engine.close()
