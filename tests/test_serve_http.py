"""End-to-end tests of the stdlib HTTP serving API.

Boots a real ThreadingHTTPServer on an ephemeral port and talks to it
over actual sockets with urllib — the same path `repro-cli serve`
exercises minus the argv parsing.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.core.problem import SelectionConfig
from repro.core.selection import make_selector
from repro.data.instances import build_instance
from repro.data.io import save_corpus
from repro.data.synthetic import generate_corpus
from repro.serve.admission import AdmissionController
from repro.serve.engine import SelectionEngine, selection_payload
from repro.serve.http import encode_json, make_server
from repro.serve.store import ItemStore


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=3)


@pytest.fixture(scope="module")
def served(corpus):
    """(base_url, engine) for a live server on an ephemeral port."""
    engine = SelectionEngine(ItemStore(corpus), workers=2)
    server = make_server(engine, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", engine
    server.shutdown()
    server.server_close()
    engine.close()


def _post(url: str, body: dict, headers: dict | None = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read(), response.headers


def _status_of(call) -> int:
    try:
        call()
    except urllib.error.HTTPError as error:
        return error.code
    pytest.fail("expected an HTTP error")


class TestHealthz:
    def test_ok(self, served):
        base, engine = served
        status, body, _ = _get(f"{base}/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["corpus_version"] == engine.store.version


class TestSelect:
    def test_result_is_byte_identical_to_offline_selector(self, served, corpus):
        """The HTTP JSON result equals CompareSetsSelector byte-for-byte."""
        base, _ = served
        status, payload = _post(
            f"{base}/v1/select", {"m": 3, "algorithm": "CompaReSetS"}
        )
        assert status == 200

        instance = build_instance(
            corpus, payload["result"]["target"], max_comparisons=10, min_reviews=3
        )
        offline = make_selector("CompaReSetS").select(
            instance, SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)
        )
        assert encode_json(payload["result"]) == encode_json(
            selection_payload(offline)
        )

    def test_provenance_reports_cache_hit(self, served):
        base, _ = served
        _post(f"{base}/v1/select", {"m": 2})
        status, payload = _post(f"{base}/v1/select", {"m": 2})
        assert status == 200
        assert payload["provenance"]["cache"] == "hit"
        assert payload["provenance"]["wall_ms"] < 10.0

    def test_empty_body_uses_defaults(self, served):
        base, _ = served
        request = urllib.request.Request(
            f"{base}/v1/select", data=b"", method="POST"
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = json.loads(response.read())
        assert payload["result"]["algorithm"] == "CompaReSetS+"


class TestNarrow:
    def test_narrow_end_to_end(self, served):
        base, _ = served
        status, payload = _post(f"{base}/v1/narrow", {"m": 2, "k": 3})
        assert status == 200
        assert payload["result"]["k"] <= 3
        assert payload["provenance"]["backend"] == "milp"
        assert payload["provenance"]["proven_optimal"] is True


class TestErrorMapping:
    def test_malformed_json_is_400(self, served):
        base, _ = served
        request = urllib.request.Request(
            f"{base}/v1/select", data=b"{not json", method="POST"
        )
        assert _status_of(lambda: urllib.request.urlopen(request, timeout=30)) == 400

    def test_mistyped_field_is_400(self, served):
        base, _ = served
        assert _status_of(lambda: _post(f"{base}/v1/select", {"m": "three"})) == 400

    def test_unknown_field_is_400(self, served):
        base, _ = served
        assert _status_of(lambda: _post(f"{base}/v1/select", {"budget": 3})) == 400

    def test_unknown_target_is_422(self, served):
        base, _ = served
        assert (
            _status_of(lambda: _post(f"{base}/v1/select", {"target": "GHOST"}))
            == 422
        )

    def test_unknown_algorithm_is_422(self, served):
        base, _ = served
        assert (
            _status_of(lambda: _post(f"{base}/v1/select", {"algorithm": "Oracle"}))
            == 422
        )

    def test_exhausted_deadline_is_503(self, served):
        base, _ = served
        assert (
            _status_of(
                lambda: _post(
                    f"{base}/v1/select",
                    {"m": 7, "algorithm": "CompaReSetS+"},
                    headers={"X-Deadline-Ms": "0.001"},
                )
            )
            == 503
        )

    def test_bad_deadline_header_is_400(self, served):
        base, _ = served
        assert (
            _status_of(
                lambda: _post(
                    f"{base}/v1/select", {"m": 2},
                    headers={"X-Deadline-Ms": "soon"},
                )
            )
            == 400
        )

    def test_unknown_path_is_404(self, served):
        base, _ = served
        assert _status_of(lambda: _get(f"{base}/v2/select")) == 404

    def test_get_on_select_is_405(self, served):
        base, _ = served
        assert _status_of(lambda: _get(f"{base}/v1/select")) == 405


class TestMetricsEndpoint:
    def test_json_metrics_report_cache_activity(self, served):
        base, _ = served
        _post(f"{base}/v1/select", {"m": 4})
        _post(f"{base}/v1/select", {"m": 4})
        status, body, headers = _get(f"{base}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["gauges"]["repro_cache_hit_ratio"] > 0.0
        assert payload["counters"]['repro_requests_total{endpoint="select"}'] >= 2

    def test_prometheus_rendering(self, served):
        base, _ = served
        _post(f"{base}/v1/select", {"m": 4})
        status, body, headers = _get(f"{base}/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_cache_hit_ratio" in text

    def test_accept_header_switches_to_prometheus(self, served):
        base, _ = served
        _, body, _ = _get(f"{base}/metrics", headers={"Accept": "text/plain"})
        assert body.decode().startswith("# ")


@contextmanager
def _fresh_server(engine):
    """A dedicated server for tests that mutate engine health/admission."""
    server = make_server(engine, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        engine.close()


class TestOverloadResponses:
    def test_shed_request_is_429_with_retry_after(self, corpus):
        engine = SelectionEngine(
            ItemStore(corpus),
            workers=2,
            admission=AdmissionController(max_pending=1),
        )
        with _fresh_server(engine) as base:
            slot = engine.admission.admit()  # wedge the queue full
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post(f"{base}/v1/select", {"m": 2})
                error = excinfo.value
                assert error.code == 429
                # RFC 9110: the header is an integer number of seconds
                # (rounded up); the JSON body carries the precise float.
                assert int(error.headers["Retry-After"]) >= 1
                payload = json.loads(error.read())
                assert payload["reason"] == "queue_full"
                assert payload["retry_after"] > 0
            finally:
                slot.release()
            # Queue free again: the same request now succeeds.
            status, _ = _post(f"{base}/v1/select", {"m": 2})
            assert status == 200

    def test_draining_engine_answers_503(self, corpus):
        engine = SelectionEngine(ItemStore(corpus), workers=2)
        with _fresh_server(engine) as base:
            engine.health.start_draining()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{base}/v1/select", {"m": 2})
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1

    def test_healthz_reports_draining_as_503(self, corpus):
        engine = SelectionEngine(ItemStore(corpus), workers=2)
        with _fresh_server(engine) as base:
            status, body, _ = _get(f"{base}/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            engine.health.start_draining()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{base}/healthz")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["status"] == "draining"

    def test_healthz_reports_degraded_backends(self, corpus):
        engine = SelectionEngine(ItemStore(corpus), workers=2)
        with _fresh_server(engine) as base:
            engine.breakers.breaker("milp")  # lazily created, then wedged
            for _ in range(3):
                engine.breakers.breaker("milp").record_failure()
            status, body, _ = _get(f"{base}/healthz")
            assert status == 200  # degraded still serves
            payload = json.loads(body)
            assert payload["status"] == "degraded"
            assert any("milp" in reason for reason in payload["reasons"])


class TestReloadEndpoint:
    def test_reload_swaps_corpus_and_reports_versions(self, corpus, tmp_path):
        engine = SelectionEngine(ItemStore(corpus), workers=2)
        with _fresh_server(engine) as base:
            previous = engine.store.version
            path = tmp_path / "corpus.json"
            save_corpus(generate_corpus("Toy", scale=0.3, seed=11), path)
            status, payload = _post(f"{base}/v1/reload", {"path": str(path)})
            assert status == 200
            assert payload["previous"] == previous
            assert payload["version"] == engine.store.version != previous
            # The swapped corpus serves immediately.
            status, _ = _post(f"{base}/v1/select", {"m": 2})
            assert status == 200

    def test_reload_invalid_corpus_is_409_and_rolls_back(self, corpus, tmp_path):
        engine = SelectionEngine(ItemStore(corpus), workers=2)
        with _fresh_server(engine) as base:
            previous = engine.store.version
            path = tmp_path / "broken.json"
            path.write_text('{"not": "a corpus"}', encoding="utf-8")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{base}/v1/reload", {"path": str(path)})
            assert excinfo.value.code == 409
            payload = json.loads(excinfo.value.read())
            assert payload["version"] == previous
            assert engine.store.version == previous

    def test_reload_missing_path_field_is_400(self, corpus):
        engine = SelectionEngine(ItemStore(corpus), workers=2)
        with _fresh_server(engine) as base:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{base}/v1/reload", {})
            assert excinfo.value.code == 400

    def test_reload_unknown_field_is_400(self, corpus):
        engine = SelectionEngine(ItemStore(corpus), workers=2)
        with _fresh_server(engine) as base:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{base}/v1/reload", {"path": "x", "force": True})
            assert excinfo.value.code == 400

    def test_reload_nonexistent_file_is_409(self, corpus):
        engine = SelectionEngine(ItemStore(corpus), workers=2)
        with _fresh_server(engine) as base:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{base}/v1/reload", {"path": "/does/not/exist.json"})
            assert excinfo.value.code == 409

    def test_get_on_reload_is_405(self, served):
        base, _ = served
        assert _status_of(lambda: _get(f"{base}/v1/reload")) == 405
