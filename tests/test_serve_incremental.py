"""Incremental artifact updates: delta patches must equal cold builds.

The serving contract for ``POST /v1/ingest`` is byte-identity: a store
that absorbed N review deltas must hold exactly the artifacts a fresh
store built from the final corpus would hold — same dedup group order,
same Gram bytes, same tau/Gamma, same selections.  These tests drive the
bordered-Gram patch path (``GramBlock.extended`` /
``SolverArtifacts.extended`` / ``ItemStore._carry_over``) against cold
rebuilds, including the cases that must *refuse* to patch.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.omp_kernel import GramBlock, SolverArtifacts, StageTimer, solve_item
from repro.core.problem import SelectionConfig
from repro.core.vectors import OpinionScheme
from repro.data.corpus import Corpus
from repro.data.models import AspectMention, Product, Review
from repro.data.synthetic import generate_corpus
from repro.serve.store import DeltaOutcome, ItemStore, corpus_fingerprint, delta_fingerprint

from tests.conftest import make_review


def _assert_blocks_equal(patched: GramBlock, cold: GramBlock) -> None:
    assert patched.groups == cold.groups
    assert np.array_equal(patched.capacities, cold.capacities)
    assert np.array_equal(patched.column_group, cold.column_group)
    assert patched._dedup_matrix.tobytes() == cold._dedup_matrix.tobytes()
    assert patched.unique_opinion.tobytes() == cold.unique_opinion.tobytes()
    assert patched.unique_aspect.tobytes() == cold.unique_aspect.tobytes()
    assert patched.gram_op.tobytes() == cold.gram_op.tobytes()
    assert patched.gram_asp.tobytes() == cold.gram_asp.tobytes()
    assert patched.nonnegative() == cold.nonnegative()


def _assert_artifacts_equal(patched, cold) -> None:
    assert patched.gamma.tobytes() == cold.gamma.tobytes()
    assert len(patched.taus) == len(cold.taus)
    for left, right in zip(patched.taus, cold.taus):
        assert left.tobytes() == right.tobytes()
    for left, right in zip(patched.columns, cold.columns):
        assert left.shape == right.shape
        assert left.tobytes() == right.tobytes()
    assert len(patched.solver) == len(cold.solver)
    for ours, theirs in zip(patched.solver, cold.solver):
        assert ours._opinion.tobytes() == theirs._opinion.tobytes()
        assert ours._aspect.tobytes() == theirs._aspect.tobytes()
        _assert_blocks_equal(ours.base_block(), theirs.base_block())


class TestDeltaConvergence:
    """Property: seed build + deltas in order == cold build, byte-for-byte."""

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_random_partitions_converge(self, data):
        seed = data.draw(st.integers(min_value=0, max_value=50), label="seed")
        corpus = generate_corpus("Toy", scale=0.3, seed=seed)
        rng = np.random.default_rng(seed + 1)

        # Hold out per-product suffixes (keeping >= 1 review each) so the
        # seed corpus is a pure per-product prefix of the final corpus.
        deltas: list[Review] = []
        held = set()
        for product in corpus.products:
            reviews = corpus.reviews_of(product.product_id)
            if len(reviews) > 1 and rng.random() < 0.6:
                keep = int(rng.integers(1, len(reviews)))
                for review in reviews[keep:]:
                    deltas.append(review)
                    held.add(review.review_id)
        if not deltas:
            return
        seed_reviews = [r for r in corpus.reviews if r.review_id not in held]
        seed_corpus = Corpus(corpus.name, corpus.products, seed_reviews)

        # Contiguous cuts preserve per-product order, which is what real
        # ingest guarantees (appends are chronological per product).
        cuts = data.draw(
            st.sets(
                st.integers(min_value=1, max_value=len(deltas) - 1),
                max_size=min(3, len(deltas) - 1),
            )
            if len(deltas) > 1
            else st.just(set()),
            label="cuts",
        )
        bounds = [0, *sorted(cuts), len(deltas)]
        batches = [
            deltas[lo:hi] for lo, hi in zip(bounds, bounds[1:]) if lo < hi
        ]

        store = ItemStore(seed_corpus)
        target = store.default_target(10, 1)
        configs = {
            scheme: SelectionConfig(max_reviews=3, lam=1.0, mu=0.1, scheme=scheme)
            for scheme in OpinionScheme
        }
        for config in configs.values():
            store.artifacts(target, config, min_reviews=1)
        for batch in batches:
            store.apply_delta(batch)

        # Deltas append at the end of the global sequence, but every
        # per-product sequence — the order artifacts are built from —
        # must come out identical to the cold corpus.
        for product in corpus.products:
            assert [
                r.review_id for r in store.corpus.reviews_of(product.product_id)
            ] == [r.review_id for r in corpus.reviews_of(product.product_id)]
        cold_store = ItemStore(corpus)
        for scheme, config in configs.items():
            patched = store.artifacts(target, config, min_reviews=1)
            cold = cold_store.artifacts(target, config, min_reviews=1)
            _assert_artifacts_equal(patched, cold)
            for index in range(len(patched.solver)):
                warm = solve_item(
                    patched.solver[index], patched.taus[index], patched.gamma, config
                )
                fresh = solve_item(
                    cold.solver[index], cold.taus[index], cold.gamma, config
                )
                assert warm.selected == fresh.selected, scheme
                assert warm.objective == fresh.objective, scheme


class TestTargetedCases:
    @pytest.fixture()
    def corpus(self):
        return generate_corpus("Toy", scale=0.3, seed=3)

    @pytest.fixture()
    def config(self):
        return SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)

    def _delta_for(self, store, target, config, *, index=1):
        """A new review duplicating an existing one of instance item ``index``."""
        art = store.artifacts(target, config)
        pid = art.instance.products[index].product_id
        sample = store.corpus.reviews_of(pid)[0]
        return pid, Review(
            review_id="delta-dup-1",
            product_id=pid,
            reviewer_id="delta-user",
            rating=4.0,
            text="duplicate delta",
            mentions=sample.mentions,
        )

    def test_duplicate_column_delta_joins_group(self, corpus, config):
        store = ItemStore(corpus)
        target = store.default_target(10, 3)
        pid, dup = self._delta_for(store, target, config)
        before = store.artifacts(target, config)
        index = [p.product_id for p in before.instance.products].index(pid)
        groups_before = before.solver[index].base_block().num_groups
        outcome = store.apply_delta([dup])
        assert outcome.patched == 1 and outcome.rebuilt == 0
        patched = store.artifacts(target, config)
        # The duplicated column joins an existing dedup group rather than
        # opening a new one — exactly what a cold rebuild would produce.
        assert patched.solver[index].base_block().num_groups == groups_before
        _assert_artifacts_equal(patched, ItemStore(store.corpus).artifacts(target, config))

    def test_memo_and_identity_carry_for_untouched_items(self, corpus, config):
        store = ItemStore(corpus)
        target = store.default_target(10, 3)
        pid, dup = self._delta_for(store, target, config)
        before = store.artifacts(target, config)
        index = [p.product_id for p in before.instance.products].index(pid)
        store.apply_delta([dup])
        patched = store.artifacts(target, config)
        for position, solver in enumerate(patched.solver):
            if position == index:
                # Extended item: new object, cleared memo (capacities may
                # shift apportionment even for an unchanged target).
                assert solver is not before.solver[position]
                assert not solver._solve_cache
            else:
                # Untouched items share the very same SolverArtifacts, so
                # their solve memos survive the delta.
                assert solver is before.solver[position]

    def test_min_reviews_crossing_forces_rebuild(self, config):
        # Candidate "P2" sits below min_reviews until the delta arrives,
        # so the delta changes the comparative set: patching is illegal
        # and the store must rebuild cold.
        products = [
            Product(product_id="P1", title="target", category="toys", also_bought=("P2",)),
            Product(product_id="P2", title="cand", category="toys", also_bought=("P1",)),
        ]
        reviews = [
            make_review(f"r{i}", "P1", [("screen", 1), ("battery", -1)])
            for i in range(3)
        ] + [
            make_review("c1", "P2", [("screen", 1)]),
            make_review("c2", "P2", [("battery", 1)]),
        ]
        corpus = Corpus("Tiny", products, reviews)
        store = ItemStore(corpus)
        with pytest.raises(Exception):
            store.artifacts("P1", config, min_reviews=3)
        # Make P1 viable via a 3-review candidate P2 after the delta.
        delta = make_review("c3", "P2", [("screen", -1)])
        outcome = store.apply_delta([delta])
        assert outcome.patched == 0
        art = store.artifacts("P1", config, min_reviews=3)
        assert [p.product_id for p in art.instance.products] == ["P1", "P2"]
        _assert_artifacts_equal(
            art, ItemStore(store.corpus).artifacts("P1", config, min_reviews=3)
        )

    def test_membership_change_counts_rebuilt(self, config):
        products = [
            Product(product_id="P1", title="target", category="toys", also_bought=("P2", "P3")),
            Product(product_id="P2", title="cand", category="toys", also_bought=()),
            Product(product_id="P3", title="late", category="toys", also_bought=()),
        ]
        reviews = (
            [make_review(f"r{i}", "P1", [("screen", 1)]) for i in range(3)]
            + [make_review(f"c{i}", "P2", [("screen", 1)]) for i in range(3)]
            + [make_review(f"d{i}", "P3", [("screen", -1)]) for i in range(2)]
        )
        store = ItemStore(Corpus("Tiny", products, reviews))
        store.artifacts("P1", config, min_reviews=3)
        # Third review pushes P3 over min_reviews: comparative set of P1
        # changes from (P2,) to (P2, P3) => rebuild, not patch.
        outcome = store.apply_delta([make_review("d2", "P3", [("screen", 1)])])
        assert outcome.rebuilt == 1 and outcome.patched == 0
        art = store.artifacts("P1", config, min_reviews=3)
        assert [p.product_id for p in art.instance.products] == ["P1", "P2", "P3"]

    def test_new_aspect_forces_rebuild(self, corpus, config):
        store = ItemStore(corpus)
        target = store.default_target(10, 3)
        art = store.artifacts(target, config)
        pid = art.instance.products[1].product_id
        novel = Review(
            review_id="delta-novel",
            product_id=pid,
            reviewer_id="delta-user",
            rating=4.0,
            text="a brand new aspect",
            mentions=(AspectMention(aspect="zz-unheard-of-aspect", sentiment=1),),
        )
        outcome = store.apply_delta([novel])
        assert outcome.rebuilt == 1 and outcome.patched == 0
        rebuilt = store.artifacts(target, config)
        assert "zz-unheard-of-aspect" in rebuilt.space.aspects
        _assert_artifacts_equal(rebuilt, ItemStore(store.corpus).artifacts(target, config))

    def test_verify_mismatch_falls_back_to_cold(self, corpus, config, monkeypatch, caplog):
        store = ItemStore(corpus)
        store.patch_verify = True
        target = store.default_target(10, 3)
        pid, dup = self._delta_for(store, target, config)
        store.artifacts(target, config)

        real = ItemStore._patched_artifacts

        def corrupting(self, new, art_key, artifacts, instance, affected, deltas):
            patched = real(self, new, art_key, artifacts, instance, affected, deltas)
            if patched is None:
                return None
            return dataclasses.replace(patched, gamma=patched.gamma + 1.0)

        monkeypatch.setattr(ItemStore, "_patched_artifacts", corrupting)
        with caplog.at_level("ERROR", logger="repro.serve.store"):
            outcome = store.apply_delta([dup])
        assert outcome.verify_failures == 1
        assert outcome.rebuilt == 1 and outcome.patched == 0
        assert any("diverged from cold build" in r.message for r in caplog.records)
        served = store.artifacts(target, config)
        _assert_artifacts_equal(served, ItemStore(store.corpus).artifacts(target, config))

    def test_verify_clean_patch_passes(self, corpus, config):
        store = ItemStore(corpus)
        store.patch_verify = True
        target = store.default_target(10, 3)
        pid, dup = self._delta_for(store, target, config)
        store.artifacts(target, config)
        outcome = store.apply_delta([dup])
        assert outcome.patched == 1 and outcome.verify_failures == 0


class TestSignedZeroColumns:
    def test_negative_zero_delta_column_joins_positive_zero_group(self):
        # PR 4's signed-zero fix: np.round keeps -0.0, so dedup adds +0.0
        # before keying columns.  The incremental reconciliation must do
        # the same, or a -0.0 delta column would split a group that a cold
        # rebuild merges.
        opinion = np.array([[1.0, 1.0], [0.0, 0.0]])
        aspect = np.array([[0.0, 0.0], [1.0, 1.0]])
        timer = StageTimer()
        base = GramBlock(opinion, aspect, 1.0, 0.0, False, timer)
        assert base.num_groups == 1
        full_opinion = np.hstack([opinion, np.array([[1.0], [-0.0]])])
        full_aspect = np.hstack([aspect, np.array([[-0.0], [1.0]])])
        patched = base.extended(full_opinion, full_aspect, 2, timer)
        cold = GramBlock(full_opinion, full_aspect, 1.0, 0.0, False, timer)
        assert patched.num_groups == cold.num_groups == 1
        _assert_blocks_equal(patched, cold)

    def test_tiny_negative_noise_matches_cold_grouping(self):
        opinion = np.array([[1.0, 1.0 + 1e-15], [1e-15, 0.0]])
        aspect = np.array([[0.5, 0.5]])
        timer = StageTimer()
        base = GramBlock(opinion, aspect, 1.0, 0.0, False, timer)
        full_opinion = np.hstack([opinion, np.array([[1.0], [-1e-15]])])
        full_aspect = np.hstack([aspect, np.array([[0.5]])])
        patched = base.extended(full_opinion, full_aspect, 2, timer)
        cold = GramBlock(full_opinion, full_aspect, 1.0, 0.0, False, timer)
        _assert_blocks_equal(patched, cold)


class TestLineageFingerprints:
    def test_delta_version_is_chained_not_rehashed(self):
        corpus = generate_corpus("Toy", scale=0.3, seed=3)
        store = ItemStore(corpus)
        v1 = store.version
        pid = corpus.products[0].product_id
        delta = [
            Review(
                review_id="chain-1",
                product_id=pid,
                reviewer_id="u",
                rating=4.0,
                text="x",
                mentions=(),
            )
        ]
        outcome = store.apply_delta(delta)
        assert outcome.version == f"g2-{delta_fingerprint(v1, delta)}"
        # The chained fingerprint deliberately differs from a full rehash
        # of the appended corpus (that rehash is the O(corpus) cost the
        # chain removes); full loads keep the content-hash scheme.
        assert outcome.version != f"g2-{corpus_fingerprint(store.corpus)}"

    def test_replayed_deltas_reproduce_version_strings(self):
        corpus = generate_corpus("Toy", scale=0.3, seed=3)
        pids = [p.product_id for p in corpus.products]
        batches = [
            [
                Review(
                    review_id=f"replay-{batch}-{i}",
                    product_id=pids[(batch + i) % len(pids)],
                    reviewer_id="u",
                    rating=3.0,
                    text="x",
                    mentions=(),
                )
                for i in range(2)
            ]
            for batch in range(3)
        ]
        first = ItemStore(generate_corpus("Toy", scale=0.3, seed=3))
        second = ItemStore(generate_corpus("Toy", scale=0.3, seed=3))
        for batch in batches:
            left = first.apply_delta(batch)
            right = second.apply_delta(batch)
            assert left.version == right.version
        assert first.chain_state() == second.chain_state()

    def test_wal_replay_yields_identical_version(self, tmp_path):
        from repro.serve.engine import build_durable_engine

        corpus_path = tmp_path / "corpus.jsonl"
        from repro.data.io import save_corpus

        corpus = generate_corpus("Toy", scale=0.3, seed=3)
        save_corpus(corpus, corpus_path)
        state = tmp_path / "state"
        engine = build_durable_engine(
            state, corpus_path=str(corpus_path), snapshot_every=0
        )
        pid = corpus.products[0].product_id
        acked = []
        for i in range(3):
            ack = engine.ingest_reviews(
                [
                    {
                        "review_id": f"wal-{i}",
                        "product_id": pid,
                        "reviewer_id": "u",
                        "rating": 4.0,
                        "text": "x",
                        "mentions": [],
                    }
                ]
            )
            acked.append(ack["version"])
            assert "artifacts" in ack and "stage_ms" in ack
        engine.close()
        recovered = build_durable_engine(
            state, corpus_path=str(corpus_path), snapshot_every=0
        )
        assert recovered.store.version == acked[-1]
        recovered.close()


class TestDeltaOutcomeCompat:
    def test_defaults_keep_old_construction_working(self):
        outcome = DeltaOutcome(version="g2-abc", affected=("P1",), added=1)
        assert outcome.patched == 0
        assert outcome.rebuilt == 0
        assert outcome.verify_failures == 0
        assert outcome.patch_ms == 0.0
