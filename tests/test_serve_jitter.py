"""Tests for seeded Retry-After jitter: bounded, reproducible, wired in."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.jitter import NO_JITTER, RetryJitter


class TestBounds:
    def test_hints_stay_inside_the_spread_band(self):
        """Hard guarantee, not an expectation: h*(1-s) <= hint <= h*(1+s)."""
        jitter = RetryJitter(seed=42, spread=0.25)
        for _ in range(1000):
            hint = jitter.apply(2.0)
            assert 1.5 <= hint <= 2.5

    def test_never_negative(self):
        jitter = RetryJitter(seed=1, spread=0.99)
        assert all(jitter.apply(0.01) >= 0.0 for _ in range(100))

    def test_zero_spread_is_identity(self):
        jitter = RetryJitter(seed=123, spread=0.0)
        assert jitter.apply(3.7) == 3.7
        assert NO_JITTER.apply(3.7) == 3.7

    def test_spread_validation(self):
        with pytest.raises(ValueError):
            RetryJitter(spread=1.0)
        with pytest.raises(ValueError):
            RetryJitter(spread=-0.1)


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RetryJitter(seed=7, spread=0.25)
        b = RetryJitter(seed=7, spread=0.25)
        assert [a.apply(1.0) for _ in range(50)] == [
            b.apply(1.0) for _ in range(50)
        ]

    def test_different_seeds_diverge(self):
        a = RetryJitter(seed=7, spread=0.25)
        b = RetryJitter(seed=8, spread=0.25)
        assert [a.apply(1.0) for _ in range(10)] != [
            b.apply(1.0) for _ in range(10)
        ]

    def test_reset_rewinds_the_stream(self):
        jitter = RetryJitter(seed=7, spread=0.25)
        first = [jitter.apply(1.0) for _ in range(5)]
        assert jitter.applications == 5
        jitter.reset()
        assert jitter.applications == 0
        assert [jitter.apply(1.0) for _ in range(5)] == first

    def test_actually_spreads(self):
        """The anti-herd property: distinct hints, not one constant."""
        jitter = RetryJitter(seed=7, spread=0.25)
        hints = {jitter.apply(2.0) for _ in range(20)}
        assert len(hints) > 10


class TestAdmissionWiring:
    def test_shed_retry_after_is_jittered_and_reproducible(self):
        def run(seed: int) -> float:
            admission = AdmissionController(
                max_pending=1,
                queue_retry_after=2.0,
                jitter=RetryJitter(seed=seed, spread=0.25),
            )
            admission.admit(cost=0.0)  # fills the single pending slot
            with pytest.raises(Overloaded) as excinfo:
                admission.admit(cost=0.0)
            return excinfo.value.retry_after

        first, second = run(5), run(5)
        assert first == second  # seeded → reproducible
        assert 1.5 <= first <= 2.5
        assert run(6) != first  # and actually seeded, not constant

    def test_default_admission_hint_is_unjittered(self):
        admission = AdmissionController(max_pending=1, queue_retry_after=2.0)
        admission.admit(cost=0.0)
        with pytest.raises(Overloaded) as excinfo:
            admission.admit(cost=0.0)
        assert excinfo.value.retry_after == 2.0
