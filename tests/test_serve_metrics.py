"""Tests for serving metrics: counters, gauges, histograms, renderings."""

from __future__ import annotations

import json
import threading

import pytest

from repro.serve.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_thread_safety(self):
        counter = Counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestHistogram:
    def test_exact_percentiles_under_reservoir_size(self):
        histogram = Histogram("h", reservoir_size=100)
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.count == 100
        assert histogram.sum == pytest.approx(5050)
        assert histogram.percentile(0) == 1
        assert histogram.percentile(50) == 50
        assert histogram.percentile(100) == 100

    def test_reservoir_stays_bounded_and_representative(self):
        histogram = Histogram("h", reservoir_size=64)
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        p50 = histogram.percentile(50)
        # A uniform stream's sampled median lands near the true median.
        assert 2000 < p50 < 8000

    def test_deterministic_given_same_stream(self):
        a, b = Histogram("h", reservoir_size=32), Histogram("h", reservoir_size=32)
        for value in range(5000):
            a.observe(value)
            b.observe(value)
        assert a.percentile(95) == b.percentile(95)

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.percentile(50) == 0.0
        assert histogram.snapshot()["count"] == 0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)


class TestRegistry:
    def test_counter_identity_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", labels={"endpoint": "select"})
        b = registry.counter("requests", labels={"endpoint": "select"})
        c = registry.counter("requests", labels={"endpoint": "narrow"})
        assert a is b and a is not c

    def test_as_dict_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("ratio", lambda: 0.75)
        registry.histogram("latency").observe(0.01)
        payload = json.loads(json.dumps(registry.as_dict()))
        assert payload["counters"]["hits"] == 3
        assert payload["gauges"]["ratio"] == 0.75
        assert payload["histograms"]["latency"]["count"] == 1

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_requests_total", "requests", {"endpoint": "select"}
        ).inc(2)
        registry.counter(
            "repro_requests_total", "requests", {"endpoint": "narrow"}
        ).inc(1)
        registry.gauge("repro_cache_hit_ratio", lambda: 0.5, "hit ratio")
        histogram = registry.histogram("repro_latency_seconds", "latency")
        histogram.observe(0.25)
        text = registry.render_prometheus()
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{endpoint="select"} 2' in text
        assert 'repro_requests_total{endpoint="narrow"} 1' in text
        # One header per family even with several label sets.
        assert text.count("# TYPE repro_requests_total") == 1
        assert "repro_cache_hit_ratio 0.5" in text
        assert 'repro_latency_seconds{quantile="0.5"} 0.25' in text
        assert "repro_latency_seconds_count 1" in text
        assert text.endswith("\n")
