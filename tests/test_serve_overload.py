"""Engine-level overload, degradation, and graceful-drain behaviour."""

from __future__ import annotations

import threading
import time

import pytest

from repro.data.synthetic import generate_corpus
from repro.resilience.faults import InjectedFault
from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.breaker import OPEN, BreakerBoard
from repro.serve.engine import (
    EngineDraining,
    InvalidRequest,
    NarrowRequest,
    SelectionEngine,
    SelectRequest,
)
from repro.serve.health import DEGRADED, DRAINING, HEALTHY
from repro.serve.store import ItemStore


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=3)


@pytest.fixture()
def store(corpus):
    return ItemStore(corpus)


def _crashing_stage(weights, k, target, deadline):
    raise InjectedFault("injected backend crash")


class TestOverloadShedding:
    def test_sheds_when_queue_full(self, store):
        engine = SelectionEngine(
            store, workers=2, admission=AdmissionController(max_pending=1)
        )
        try:
            # Occupy the only slot out-of-band, so the next request sheds.
            slot = engine.admission.admit()
            with pytest.raises(Overloaded) as excinfo:
                engine.select(SelectRequest(m=2))
            assert excinfo.value.reason == "queue_full"
            assert excinfo.value.retry_after > 0
            slot.release()
            # Slot freed: the same request is now served.
            assert engine.select(SelectRequest(m=2)).result["items"]
        finally:
            engine.close()

    def test_shed_metrics_recorded(self, store):
        engine = SelectionEngine(
            store, workers=2, admission=AdmissionController(max_pending=1)
        )
        try:
            slot = engine.admission.admit()
            with pytest.raises(Overloaded):
                engine.select(SelectRequest(m=2))
            slot.release()
            metrics = engine.metrics.as_dict()
            assert metrics["counters"]['repro_shed_total{reason="queue_full"}'] == 1
            shed = metrics["histograms"]["repro_shed_latency_seconds"]
            assert shed["count"] == 1
            assert shed["p99"] < 0.01  # refusals answer in well under 10ms
        finally:
            engine.close()

    def test_burst_over_capacity_serves_capacity(self, store):
        engine = SelectionEngine(
            store, workers=2, admission=AdmissionController(max_pending=4)
        )
        outcomes: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(16)

        def one(index: int) -> None:
            request = SelectRequest(m=2, mu=0.1 + 0.001 * index)
            barrier.wait()
            try:
                engine.select(request)
            except Overloaded:
                with lock:
                    outcomes.append("shed")
            else:
                with lock:
                    outcomes.append("ok")

        try:
            threads = [
                threading.Thread(target=one, args=(i,)) for i in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(outcomes) == 16
            assert outcomes.count("ok") >= 1
            assert outcomes.count("shed") >= 1  # 4x capacity must shed some
        finally:
            engine.close()


class TestDraining:
    def test_draining_engine_refuses_new_requests(self, store):
        engine = SelectionEngine(store, workers=2)
        try:
            engine.health.start_draining()
            with pytest.raises(EngineDraining):
                engine.select(SelectRequest(m=2))
        finally:
            engine.close()

    def test_drain_idle_engine(self, store):
        engine = SelectionEngine(store, workers=2)
        assert engine.drain(timeout=5.0) is True
        assert engine.health.state() == DRAINING

    def test_drain_waits_for_inflight(self, store):
        engine = SelectionEngine(store, workers=2)
        release = threading.Event()
        started = threading.Event()
        results: dict[str, object] = {}

        def slow_stage(weights, k, target, deadline):
            started.set()
            release.wait(timeout=10.0)
            raise InjectedFault("resolved by greedy fallback")

        def client() -> None:
            request = NarrowRequest(m=2, k=2, stages=("slow", "greedy"))
            results["response"] = engine.narrow(request)

        engine._stage_solvers["slow"] = slow_stage
        worker = threading.Thread(target=client)
        worker.start()
        assert started.wait(timeout=10.0)
        release.set()
        assert engine.drain(timeout=10.0) is True
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        # The accepted request completed (via the fallback) before drain
        # released the pool.
        assert results["response"].result["selection"]

    def test_drain_timeout_returns_false(self, store):
        engine = SelectionEngine(store, workers=2)
        slot = engine.admission.admit()  # synthetic stuck request
        try:
            assert engine.drain(timeout=0.05) is False
        finally:
            slot.release()


class TestBreakerIntegration:
    def test_failing_stage_trips_breaker_and_falls_back(self, store):
        engine = SelectionEngine(
            store,
            workers=2,
            breakers=BreakerBoard(failure_threshold=2),
            stage_solvers={"milp": _crashing_stage},
        )
        try:
            # Distinct mu per call: the result cache must not absorb the
            # repeats, each one has to hit the failing backend.
            def request(index: int) -> NarrowRequest:
                return NarrowRequest(
                    m=2, k=2, mu=0.1 + 0.01 * index, stages=("milp", "greedy")
                )

            # Two failures trip the breaker; the chain still answers via greedy.
            for index in range(2):
                response = engine.narrow(request(index))
                assert response.provenance.backend == "greedy"
                assert response.provenance.breaker_skipped == ()
            assert engine.breakers.states()["milp"] == OPEN

            # Breaker open: milp is skipped outright and recorded as such.
            response = engine.narrow(request(2))
            assert response.provenance.backend == "greedy"
            assert response.provenance.breaker_skipped == ("milp",)
            assert "breaker_skipped" in response.provenance.as_dict()

            transitions = engine.metrics.as_dict()["counters"]
            key = 'repro_breaker_transitions_total{backend="milp",to="open"}'
            assert transitions[key] == 1
        finally:
            engine.close()

    def test_open_breaker_degrades_health(self, store):
        engine = SelectionEngine(
            store,
            workers=2,
            breakers=BreakerBoard(failure_threshold=1),
            stage_solvers={"milp": _crashing_stage},
        )
        try:
            assert engine.health.state() == HEALTHY
            engine.narrow(NarrowRequest(m=2, k=2, stages=("milp", "greedy")))
            assert engine.health.state() == DEGRADED
            assert any(
                "circuit open" in reason for reason in engine.health.reasons()
            )
        finally:
            engine.close()

    def test_unknown_stage_is_invalid_request(self, store):
        engine = SelectionEngine(store, workers=2)
        try:
            with pytest.raises(InvalidRequest, match="unknown fallback stage"):
                engine.narrow(
                    NarrowRequest(m=2, k=2, stages=("made-up-solver",))
                )
        finally:
            engine.close()

    def test_terminal_stage_never_gated(self, store):
        # Even with the greedy breaker wedged open, the terminal stage runs.
        board = BreakerBoard(failure_threshold=1)
        for _ in range(2):
            board.breaker("greedy").record_failure()
        assert board.states()["greedy"] == OPEN
        engine = SelectionEngine(store, workers=2, breakers=board)
        try:
            response = engine.narrow(
                NarrowRequest(m=2, k=2, stages=("greedy",))
            )
            assert response.result["core_product_ids"]
        finally:
            engine.close()


class TestHealthGauges:
    def test_health_and_admission_gauges_exposed(self, store):
        engine = SelectionEngine(store, workers=2)
        try:
            engine.select(SelectRequest(m=2))
            rendered = engine.metrics.render_prometheus()
            assert "repro_health_state" in rendered
            assert "repro_inflight" in rendered
            assert "repro_admission_shed_ratio" in rendered
            assert 'repro_breaker_state{backend="milp"}' in rendered
        finally:
            engine.close()

    def test_drain_flips_health_gauge(self, store):
        engine = SelectionEngine(store, workers=2)
        engine.drain(timeout=1.0)
        gauges = engine.metrics.as_dict()["gauges"]
        assert gauges["repro_health_state"] == 2.0  # draining

    def test_time_is_monotonic_in_drain(self, store):
        engine = SelectionEngine(store, workers=2)
        begun = time.monotonic()
        engine.drain(timeout=0.0)
        assert time.monotonic() - begun < 5.0
