"""Reload safety: the artifacts/reload race, validation, and rollback.

The race documented in :mod:`repro.serve.store`: a lookup that starts
before a reload and finishes after it must serve a coherent snapshot —
every array byte-identical to the generation it reports — never a blend
of the old and new corpus.  Immutable generations make this cheap to
guarantee; these tests make it a regression.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.problem import SelectionConfig
from repro.data.corpus import Corpus
from repro.data.synthetic import generate_corpus
from repro.serve.store import (
    CorpusValidationError,
    ItemStore,
    ReloadInProgress,
    corpus_fingerprint,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=3)


@pytest.fixture()
def store(corpus):
    return ItemStore(corpus)


@pytest.fixture()
def config():
    return SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)


def _artifact_bytes(artifacts) -> bytes:
    """A canonical byte serialisation of the numeric artifact content."""
    parts = [artifacts.version.encode(), artifacts.gamma.tobytes()]
    parts.extend(tau.tobytes() for tau in artifacts.taus)
    parts.extend(np.ascontiguousarray(c).tobytes() for c in artifacts.columns)
    return b"|".join(parts)


class TestReloadRace:
    def test_concurrent_artifacts_see_exactly_one_generation(
        self, store, corpus, config
    ):
        """Readers racing reload() get byte-identical per-version artifacts."""
        target = store.default_target(10, 3)
        reloads = 20
        readers = 4
        stop = threading.Event()
        observed: dict[str, set[bytes]] = {}
        lock = threading.Lock()
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    artifacts = store.artifacts(target, config)
                    blob = _artifact_bytes(artifacts)
                    with lock:
                        observed.setdefault(artifacts.version, set()).add(blob)
            except BaseException as exc:  # surfaced below, never swallowed
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(readers)]
        for thread in threads:
            thread.start()
        versions = {store.version}
        for _ in range(reloads):
            versions.add(store.reload(corpus))
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)

        assert not errors, errors
        assert observed, "readers observed no artifacts"
        # Every observed version is a real generation...
        assert set(observed) <= versions
        # ...and within one generation every reader saw identical bytes:
        # no lookup ever blended data across a racing reload.
        for version, blobs in observed.items():
            assert len(blobs) == 1, f"generation {version} served mixed bytes"

    def test_raced_lookup_is_marked_stale_by_version(self, store, corpus, config):
        target = store.default_target(10, 3)
        before = store.artifacts(target, config)
        new_version = store.reload(corpus)
        # The pre-reload artifacts stay coherent and usable, but their
        # version no longer matches the store: versioned caches drop them.
        assert before.version != new_version
        assert store.artifacts(target, config).version == new_version


class TestSafeReload:
    def test_valid_corpus_swaps_and_bumps_generation(self, store, corpus):
        version = store.safe_reload(corpus)
        assert version == f"g2-{corpus_fingerprint(corpus)}"
        assert store.version == version

    def test_invalid_corpus_rolls_back(self, store, corpus):
        before = store.version
        empty = Corpus(corpus.name, (), ())
        with pytest.raises(CorpusValidationError, match="no products"):
            store.safe_reload(empty)
        # Rollback means the swap never happened: same generation serving.
        assert store.version == before
        assert store.stats()["products"] == len(corpus.products)

    def test_corpus_without_viable_instance_rolls_back(self, store, corpus):
        before = store.version
        # Keep products but drop every review: no instance can form.
        unservable = Corpus(corpus.name, corpus.products, ())
        with pytest.raises(CorpusValidationError, match="no reviews"):
            store.safe_reload(unservable)
        assert store.version == before

    def test_concurrent_safe_reload_refused_not_queued(self, store, corpus):
        in_validation = threading.Event()
        release = threading.Event()
        original = store.validate_corpus

        def slow_validate(new_corpus, **kwargs):
            in_validation.set()
            release.wait(timeout=10.0)
            return original(new_corpus, **kwargs)

        store.validate_corpus = slow_validate  # type: ignore[method-assign]
        outcome: dict[str, str] = {}

        def first() -> None:
            outcome["version"] = store.safe_reload(corpus)

        worker = threading.Thread(target=first)
        worker.start()
        try:
            assert in_validation.wait(timeout=10.0)
            with pytest.raises(ReloadInProgress):
                store.safe_reload(corpus)
        finally:
            release.set()
            worker.join(timeout=10.0)
        assert outcome["version"] == store.version

    def test_old_generation_serves_during_validation(self, store, corpus, config):
        target = store.default_target(10, 3)
        in_validation = threading.Event()
        release = threading.Event()
        original = store.validate_corpus

        def slow_validate(new_corpus, **kwargs):
            in_validation.set()
            release.wait(timeout=10.0)
            return original(new_corpus, **kwargs)

        store.validate_corpus = slow_validate  # type: ignore[method-assign]
        before = store.version
        worker = threading.Thread(target=lambda: store.safe_reload(corpus))
        worker.start()
        try:
            assert in_validation.wait(timeout=10.0)
            # Mid-validation: lookups still answer from the old generation.
            assert store.artifacts(target, config).version == before
        finally:
            release.set()
            worker.join(timeout=10.0)
        assert store.version != before


class TestValidateCorpus:
    def test_returns_fingerprint(self, store, corpus):
        assert store.validate_corpus(corpus) == corpus_fingerprint(corpus)

    def test_rejects_empty(self, store, corpus):
        with pytest.raises(CorpusValidationError):
            store.validate_corpus(Corpus(corpus.name, (), ()))
