"""Tests for generation snapshots and the durable-open recovery path."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.problem import SelectionConfig
from repro.data.io import save_corpus
from repro.data.models import Review
from repro.data.synthetic import generate_corpus
from repro.serve.snapshot import (
    SnapshotCorruptError,
    SnapshotError,
    SnapshotManager,
    open_durable_store,
)
from repro.serve.store import ItemStore
from repro.serve.wal import WriteAheadLog, review_record


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=3)


@pytest.fixture(scope="module")
def corpus_path(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("corpus") / "toy.jsonl"
    save_corpus(corpus, path)
    return path


def _delta_review(n: int, product_id: str) -> Review:
    return Review(
        review_id=f"delta-{n}",
        product_id=product_id,
        reviewer_id=f"u{n}",
        rating=4.0,
        text=f"delta review {n} with a usable aspect mention",
        mentions=(),
    )


class TestSaveLoad:
    def test_restore_is_byte_identical(self, corpus, tmp_path):
        store = ItemStore(corpus)
        config = SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)
        target = store.default_target(10, 3)
        before = store.artifacts(target, config)

        manager = SnapshotManager(tmp_path / "snapshots")
        info = manager.save(store, wal_seq=0)
        assert info.version == store.version
        assert info.artifacts == 1

        restored, manifest = manager.load_snapshot(info.path)
        assert restored.version == store.version
        assert manifest["_restored_artifacts"] == 1
        after = restored.artifacts(target, config)
        assert after.instance == before.instance
        assert np.array_equal(after.gamma, before.gamma)
        for tau_a, tau_b in zip(after.taus, before.taus):
            assert np.array_equal(tau_a, tau_b)

    def test_restored_chain_epochs_match(self, corpus, tmp_path):
        store = ItemStore(corpus)
        product = corpus.products[0].product_id
        store.apply_delta([_delta_review(1, product)])
        manager = SnapshotManager(tmp_path / "snapshots")
        info = manager.save(store, wal_seq=1)
        restored, _ = manager.load_snapshot(info.path)
        assert restored.version == store.version
        assert restored.chain_state() == store.chain_state()

    def test_prune_keeps_newest(self, corpus, tmp_path):
        store = ItemStore(corpus)
        manager = SnapshotManager(tmp_path / "snapshots", keep=2)
        product = corpus.products[0].product_id
        for n in range(1, 4):
            store.apply_delta([_delta_review(n, product)])
            manager.save(store, wal_seq=n)
        snapshots = manager.list_snapshots()
        assert len(snapshots) == 2
        # Newest-first load gets the latest generation.
        restored, _ = manager.load_snapshot(snapshots[-1])
        assert restored.version == store.version

    def test_corrupt_payload_raises(self, corpus, tmp_path):
        store = ItemStore(corpus)
        manager = SnapshotManager(tmp_path / "snapshots")
        info = manager.save(store, wal_seq=0)
        blob = info.path / "corpus.pkl"
        blob.write_bytes(blob.read_bytes()[:-4] + b"\x00\x00\x00\x00")
        with pytest.raises(SnapshotCorruptError):
            manager.load_snapshot(info.path)

    def test_unsupported_format_raises(self, corpus, tmp_path):
        store = ItemStore(corpus)
        manager = SnapshotManager(tmp_path / "snapshots")
        info = manager.save(store, wal_seq=0)
        manifest_path = info.path / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotCorruptError):
            manager.load_snapshot(info.path)


class TestOpenDurableStore:
    def test_cold_open_ingests_corpus(self, corpus, corpus_path, tmp_path):
        store, wal, manager, info = open_durable_store(
            tmp_path / "state", corpus_path=corpus_path
        )
        assert info.mode == "cold"
        assert info.version == store.version
        assert info.replayed_deltas == 0
        wal.close()

    def test_no_snapshot_no_corpus_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            open_durable_store(tmp_path / "state")

    def test_cold_plus_wal_replay(self, corpus, corpus_path, tmp_path):
        state = tmp_path / "state"
        store, wal, _, _ = open_durable_store(state, corpus_path=corpus_path)
        product = corpus.products[0].product_id
        review = _delta_review(1, product)
        wal.append({"kind": "delta", "reviews": [review_record(review)]})
        expected = store.apply_delta([review]).version
        wal.close()

        recovered, wal2, _, info = open_durable_store(
            state, corpus_path=corpus_path
        )
        assert info.mode == "cold+wal"
        assert info.replayed_deltas == 1
        assert info.replayed_reviews == 1
        assert recovered.version == expected
        wal2.close()

    def test_snapshot_plus_wal_recovery_is_byte_identical(
        self, corpus, corpus_path, tmp_path
    ):
        """The headline invariant: snapshot + WAL tail reproduces the
        exact pre-crash version string, delta by delta."""
        state = tmp_path / "state"
        store, wal, manager, _ = open_durable_store(
            state, corpus_path=corpus_path
        )
        product = corpus.products[0].product_id
        # Delta 1 lands in a snapshot, deltas 2-3 stay in the WAL tail.
        review = _delta_review(1, product)
        seq = wal.append({"kind": "delta", "reviews": [review_record(review)]})
        store.apply_delta([review])
        manager.save(store, wal_seq=seq)
        wal.compact(seq)
        for n in (2, 3):
            review = _delta_review(n, product)
            wal.append({"kind": "delta", "reviews": [review_record(review)]})
            store.apply_delta([review])
        expected = store.version
        wal.close()

        recovered, wal2, _, info = open_durable_store(
            state, corpus_path=corpus_path
        )
        assert info.mode == "snapshot+wal"
        assert info.replayed_deltas == 2
        assert recovered.version == expected
        assert recovered.chain_state() == store.chain_state()
        wal2.close()

    def test_corrupt_snapshot_falls_back_to_older(
        self, corpus, corpus_path, tmp_path
    ):
        state = tmp_path / "state"
        store, wal, manager, _ = open_durable_store(
            state, corpus_path=corpus_path
        )
        product = corpus.products[0].product_id
        manager.save(store, wal_seq=0)
        review = _delta_review(1, product)
        seq = wal.append({"kind": "delta", "reviews": [review_record(review)]})
        store.apply_delta([review])
        newest = manager.save(store, wal_seq=seq)
        expected = store.version
        wal.close()

        # Damage the newest snapshot; the older one plus the WAL tail
        # must still reproduce the same generation.
        (newest.path / "corpus.pkl").write_bytes(b"not a pickle")
        recovered, wal2, _, info = open_durable_store(
            state, corpus_path=corpus_path
        )
        assert info.snapshots_skipped == 1
        assert info.mode == "snapshot+wal"
        assert recovered.version == expected
        wal2.close()
