"""Tests for the precomputed ItemStore (versioning, artifacts, sharing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SelectionConfig
from repro.core.selection import build_space
from repro.core.vectors import OpinionScheme, regression_columns
from repro.data.instances import build_instance
from repro.data.synthetic import generate_corpus
from repro.serve.store import (
    ItemStore,
    UnknownTargetError,
    UnviableTargetError,
    corpus_fingerprint,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus("Toy", scale=0.3, seed=3)


@pytest.fixture()
def store(corpus):
    return ItemStore(corpus)


@pytest.fixture()
def config():
    return SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)


class TestVersioning:
    def test_version_embeds_generation_and_fingerprint(self, store, corpus):
        assert store.version == f"g1-{corpus_fingerprint(corpus)}"

    def test_reload_bumps_generation_and_invalidates(self, store, corpus, config):
        target = store.default_target(10, 3)
        before = store.artifacts(target, config)
        assert store.stats()["cached_artifacts"] == 1
        version = store.reload(corpus)
        assert version == f"g2-{corpus_fingerprint(corpus)}"
        assert store.stats()["cached_artifacts"] == 0
        after = store.artifacts(target, config)
        assert after.version != before.version
        # Same corpus content -> identical artifacts, fresh objects.
        assert after.instance == before.instance
        assert np.array_equal(after.gamma, before.gamma)

    def test_distinct_corpora_fingerprint_differently(self, corpus):
        other = generate_corpus("Toy", scale=0.3, seed=4)
        assert corpus_fingerprint(corpus) != corpus_fingerprint(other)


class TestArtifacts:
    def test_unknown_target_raises(self, store, config):
        with pytest.raises(UnknownTargetError, match="GHOST"):
            store.artifacts("GHOST", config)

    def test_unviable_target_raises(self, store, corpus, config):
        # An impossible review floor makes every target unviable.
        target = corpus.products[0].product_id
        with pytest.raises(UnviableTargetError):
            store.artifacts(target, config, min_reviews=10_000)

    def test_artifacts_are_shared_across_lookups(self, store, config):
        target = store.default_target(10, 3)
        first = store.artifacts(target, config)
        second = store.artifacts(target, config)
        assert first is second  # one artifact object (and one VectorSpace)

    def test_m_and_mu_do_not_split_artifacts(self, store, config):
        target = store.default_target(10, 3)
        store.artifacts(target, config)
        store.artifacts(target, config.with_(max_reviews=7, mu=2.0))
        assert store.stats()["cached_artifacts"] == 1
        # lambda and scheme DO shape the artifacts.
        store.artifacts(target, config.with_(lam=2.0))
        store.artifacts(target, config.with_(scheme=OpinionScheme.THREE_POLARITY))
        assert store.stats()["cached_artifacts"] == 3

    def test_matches_selector_code_path(self, store, corpus, config):
        """Satellite check: store artifacts equal the selectors' own
        vectors/matrices exactly — one shared construction path."""
        target = store.default_target(10, 3)
        artifacts = store.artifacts(target, config)

        instance = build_instance(corpus, target, max_comparisons=10, min_reviews=3)
        space = build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        assert artifacts.instance == instance
        assert np.array_equal(artifacts.gamma, gamma)
        for item_index, reviews in enumerate(instance.reviews):
            tau = space.opinion_vector(reviews)
            assert np.array_equal(artifacts.taus[item_index], tau)
            columns = regression_columns(space, reviews, config.lam)
            assert np.array_equal(artifacts.columns[item_index], columns)

    def test_comparative_ids(self, store, config):
        target = store.default_target(10, 3)
        artifacts = store.artifacts(target, config)
        assert target not in artifacts.comparative_ids
        assert len(artifacts.comparative_ids) == artifacts.instance.num_items - 1


class TestDefaultTarget:
    def test_matches_first_viable_product(self, store, corpus):
        target = store.default_target(10, 3)
        for product in corpus.products:
            instance = build_instance(
                corpus, product.product_id, max_comparisons=10, min_reviews=3
            )
            if instance is not None:
                assert target == product.product_id
                return
        pytest.fail("corpus has no viable target at all")

    def test_no_viable_target_raises(self, store):
        with pytest.raises(UnviableTargetError):
            store.default_target(10, 10_000)


class TestRegressionColumns:
    def test_sync_blocks_stack_mu_scaled_aspects(self, store, config):
        target = store.default_target(10, 3)
        artifacts = store.artifacts(target, config)
        space = artifacts.space
        reviews = artifacts.instance.reviews[0]
        base = regression_columns(space, reviews, config.lam)
        stacked = regression_columns(
            space, reviews, config.lam, mu=0.5, sync_blocks=2
        )
        aspect = space.aspect_matrix(reviews)
        assert stacked.shape[0] == base.shape[0] + 2 * aspect.shape[0]
        assert np.array_equal(stacked[: base.shape[0]], base)
        assert np.array_equal(stacked[base.shape[0]:], np.vstack([0.5 * aspect] * 2))

    def test_negative_sync_blocks_rejected(self, store, config):
        target = store.default_target(10, 3)
        artifacts = store.artifacts(target, config)
        with pytest.raises(ValueError):
            regression_columns(
                artifacts.space, artifacts.instance.reviews[0], 1.0, sync_blocks=-1
            )
