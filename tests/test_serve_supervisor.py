"""Tests for the child-process supervisor: restarts, backoff, provenance.

One real child process is spawned for the lifecycle test (cold corpus
ingest of the small Toy corpus); everything else is pure policy math so
the file stays fast.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.data.io import save_corpus
from repro.data.synthetic import generate_corpus
from repro.serve.supervisor import RestartPolicy, Supervisor, SupervisorError


class TestRestartPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RestartPolicy(base_delay=0.1, max_delay=1.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(10) == 1.0  # capped

    def test_delay_rejects_nonpositive_attempts(self):
        with pytest.raises(ValueError):
            RestartPolicy().delay(0)

    def test_restart_budget(self):
        unlimited = RestartPolicy()
        assert not unlimited.exhausted(10_000)
        bounded = RestartPolicy(max_restarts=3)
        assert not bounded.exhausted(2)
        assert bounded.exhausted(3)


class TestLifecycle:
    def test_start_kill_restart_stop(self, tmp_path):
        """The full loop: serve, SIGKILL, auto-restart on the same port
        with recovery provenance at /healthz."""
        corpus_path = tmp_path / "toy.jsonl"
        save_corpus(generate_corpus("Toy", scale=0.3, seed=3), corpus_path)
        supervisor = Supervisor(
            tmp_path / "state",
            corpus_path=corpus_path,
            policy=RestartPolicy(base_delay=0.05, max_restarts=5),
            engine_options={"workers": 2, "snapshot_every": 0},
        )
        with supervisor:
            ready = supervisor.wait_ready()
            port = ready["port"]
            assert supervisor.port == port
            assert supervisor.is_alive()
            assert ready["recovery"]["mode"] == "cold"
            assert ready["recovery"]["restarts"] == 0

            supervisor.kill()
            deadline = time.monotonic() + 60.0
            while supervisor.restarts < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert supervisor.restarts == 1
            ready = supervisor.wait_ready(timeout=60.0)
            # Same port after restart, so clients just reconnect.
            assert ready["port"] == port
            assert ready["recovery"]["restarts"] == 1
            assert ready["version"] == supervisor.status()["last_ready"]["version"]

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30
            ) as response:
                payload = json.loads(response.read())
            assert payload["recovery"]["restarts"] == 1
        assert not supervisor.is_alive()

    def test_kill_without_child_raises(self, tmp_path):
        supervisor = Supervisor(tmp_path / "state", corpus_path=None)
        with pytest.raises(SupervisorError):
            supervisor.kill()

    def test_broken_child_reports_failure(self, tmp_path):
        # No snapshot and no corpus: the child cannot open the store.
        supervisor = Supervisor(
            tmp_path / "state",
            corpus_path=None,
            policy=RestartPolicy(base_delay=0.01, max_restarts=1),
            ready_timeout=30.0,
        )
        supervisor.start()
        with pytest.raises(SupervisorError):
            supervisor.wait_ready(timeout=60.0)
        supervisor.stop()
