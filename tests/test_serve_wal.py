"""Tests for the write-ahead log: durability, torn tails, compaction."""

from __future__ import annotations

import errno

import pytest

from repro.data.models import AspectMention, Review
from repro.serve.wal import (
    WALCorruptError,
    WriteAheadLog,
    review_from_record,
    review_record,
)


def _delta(n: int) -> dict:
    return {"kind": "delta", "reviews": [{"review_id": f"r{n}"}]}


class TestAppendReplay:
    def test_append_assigns_monotonic_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "ingest.wal")
        assert wal.append(_delta(1)) == 1
        assert wal.append(_delta(2)) == 2
        assert wal.last_seq == 2
        assert len(wal) == 2

    def test_replay_survives_reopen(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_delta(1))
            wal.append(_delta(2))
        reopened = WriteAheadLog(path)
        records = list(reopened.replay())
        assert [seq for seq, _ in records] == [1, 2]
        assert records[0][1]["reviews"] == [{"review_id": "r1"}]
        assert reopened.stats().torn_tail_bytes == 0

    def test_replay_after_seq_filters(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "ingest.wal")
        for n in range(1, 5):
            wal.append(_delta(n))
        assert [seq for seq, _ in wal.replay(after_seq=2)] == [3, 4]

    def test_missing_file_starts_empty(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "missing.wal")
        assert wal.last_seq == 0
        assert list(wal.replay()) == []


class TestTornTail:
    def test_torn_final_record_is_truncated(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_delta(1))
            wal.append(_delta(2))
        intact = path.read_bytes()
        # Tear the tail mid-record, as a kill -9 during the write would.
        path.write_bytes(intact[:-10])

        recovered = WriteAheadLog(path)
        assert recovered.stats().torn_tail_bytes > 0
        assert [seq for seq, _ in recovered.replay()] == [1]
        # The file itself was healed back to the last good byte.
        assert path.read_bytes() == intact[: len(path.read_bytes())]
        # Appends continue with the torn record's seq reused.
        assert recovered.append(_delta(2)) == 2

    def test_garbage_tail_is_truncated(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_delta(1))
        with path.open("ab") as handle:
            handle.write(b"\x00\xffgarbage")
        recovered = WriteAheadLog(path)
        assert [seq for seq, _ in recovered.replay()] == [1]

    def test_midfile_damage_is_not_silently_healed(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_delta(1))
            wal.append(_delta(2))
        raw = bytearray(path.read_bytes())
        # Flip a byte inside the *first* record: damage followed by data.
        raw[10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(WALCorruptError):
            WriteAheadLog(path)


class TestDiskFull:
    def test_failed_append_rolls_back_and_propagates(self, tmp_path):
        path = tmp_path / "ingest.wal"
        full = {"on": False}

        def before_write(num_bytes: int) -> None:
            if full["on"]:
                raise OSError(errno.ENOSPC, "no space left on device")

        wal = WriteAheadLog(path, before_write=before_write)
        wal.append(_delta(1))
        size_before = path.stat().st_size
        full["on"] = True
        with pytest.raises(OSError):
            wal.append(_delta(2))
        # Nothing half-written survives; seq did not advance.
        assert path.stat().st_size == size_before
        assert wal.last_seq == 1
        full["on"] = False
        assert wal.append(_delta(2)) == 2
        assert [seq for seq, _ in WriteAheadLog(path).replay()] == [1, 2]


class TestCompaction:
    def test_compact_drops_covered_records(self, tmp_path):
        path = tmp_path / "ingest.wal"
        wal = WriteAheadLog(path)
        for n in range(1, 5):
            wal.append(_delta(n))
        assert wal.compact(upto_seq=2) == 2
        assert [seq for seq, _ in wal.replay()] == [3, 4]
        # On-disk file shrank to just the kept tail.
        assert [seq for seq, _ in WriteAheadLog(path).replay()] == [3, 4]

    def test_seq_keeps_counting_after_full_compaction(self, tmp_path):
        """Compacting the whole log must not reset sequence numbering —
        a snapshot watermark of 3 followed by seq restarting at 1 would
        make recovery skip genuinely new deltas."""
        path = tmp_path / "ingest.wal"
        wal = WriteAheadLog(path)
        for n in range(1, 4):
            wal.append(_delta(n))
        wal.compact(upto_seq=3)
        assert wal.last_seq == 3
        assert wal.append(_delta(4)) == 4

    def test_compact_noop_when_nothing_covered(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "ingest.wal")
        wal.append(_delta(1))
        assert wal.compact(upto_seq=0) == 0
        assert len(wal) == 1


class TestReviewRecords:
    def test_round_trip(self):
        review = Review(
            review_id="r1",
            product_id="P1",
            reviewer_id="u9",
            rating=4.0,
            text="sharp lens",
            mentions=(AspectMention(aspect="lens", sentiment=1, strength=2.0),),
        )
        assert review_from_record(review_record(review)) == review

    @pytest.mark.parametrize(
        "record",
        [
            "not a dict",
            {},
            {"review_id": "r1"},  # no product_id
            {"review_id": "r1", "product_id": "P1", "rating": "not-a-number"},
            {"review_id": "r1", "product_id": "P1", "mentions": [{"bad": 1}]},
        ],
    )
    def test_malformed_records_raise_value_error(self, record):
        with pytest.raises(ValueError):
            review_from_record(record)
