"""Tests for the §3.1 item similarity graph."""

import numpy as np
import pytest

from repro.core.baselines import RandomSelector
from repro.core.objective import pairwise_item_distance
from repro.core.selection import build_space
from repro.graph.similarity import (
    ItemGraph,
    _pairwise_aspect_distances,
    _pairwise_distances_reference,
    build_item_graph,
)


@pytest.fixture()
def graph_and_result(instance, config, rng):
    result = RandomSelector().select(instance, config, rng=rng)
    return build_item_graph(result, config), result


class TestBuildItemGraph:
    def test_shapes_and_ids(self, graph_and_result, instance):
        graph, _ = graph_and_result
        n = instance.num_items
        assert graph.num_items == n
        assert graph.distances.shape == (n, n)
        assert graph.weights.shape == (n, n)
        assert graph.product_ids[0] == instance.target.product_id

    def test_symmetry_and_zero_diagonal(self, graph_and_result):
        graph, _ = graph_and_result
        np.testing.assert_allclose(graph.distances, graph.distances.T)
        np.testing.assert_allclose(graph.weights, graph.weights.T)
        assert not np.diagonal(graph.weights).any()
        assert not np.diagonal(graph.distances).any()

    def test_weights_non_negative_with_zero_minimum(self, graph_and_result):
        graph, _ = graph_and_result
        off = graph.weights[~np.eye(graph.num_items, dtype=bool)]
        assert (off >= -1e-12).all()
        # w_ij = max d - d_ij, so the farthest pair gets weight exactly 0.
        assert off.min() == pytest.approx(0.0, abs=1e-12)

    def test_distances_match_formula(self, graph_and_result, instance, config):
        graph, result = graph_and_result
        space = build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        taus = [space.opinion_vector(r) for r in instance.reviews]
        for i in range(instance.num_items - 1):
            for j in range(i + 1, instance.num_items):
                expected = pairwise_item_distance(
                    space,
                    result.selected_reviews(i),
                    result.selected_reviews(j),
                    taus[i],
                    taus[j],
                    gamma,
                    config,
                )
                assert graph.distances[i, j] == pytest.approx(expected)

    def test_vectorized_distances_match_reference_loop(self, rng):
        """The Gram-trick all-pairs matrix equals the per-pair loop."""
        for trial in range(10):
            n = int(rng.integers(2, 9))
            z = int(rng.integers(1, 12))
            phis = rng.random((n, z)) * rng.integers(1, 5)
            fit_terms = rng.random(n)
            mu = float(rng.random())
            reference = _pairwise_distances_reference(
                fit_terms, [phis[i] for i in range(n)], mu
            )
            vectorized = fit_terms[:, None] + fit_terms[None, :]
            vectorized += mu**2 * _pairwise_aspect_distances(phis)
            np.fill_diagonal(vectorized, 0.0)
            np.testing.assert_allclose(vectorized, reference, rtol=1e-12, atol=1e-12)
            assert (vectorized == vectorized.T).all()

    def test_graph_distances_match_reference_loop(self, instance, config, rng):
        """build_item_graph's matrix equals the pre-vectorisation pair loop."""
        from repro.core.distance import squared_l2
        from repro.core.selection import build_space as _build_space

        result = RandomSelector().select(instance, config, rng=rng)
        graph = build_item_graph(result, config)
        space = _build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        n = instance.num_items
        fit_terms = np.zeros(n)
        phis = []
        for i in range(n):
            selected = result.selected_reviews(i)
            tau = space.opinion_vector(instance.reviews[i])
            fit_terms[i] = squared_l2(tau, space.opinion_vector(selected))
            fit_terms[i] += config.lam**2 * squared_l2(
                gamma, space.aspect_vector(selected)
            )
            phis.append(space.aspect_vector(selected))
        reference = _pairwise_distances_reference(fit_terms, phis, config.mu)
        np.testing.assert_allclose(graph.distances, reference, rtol=1e-12, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shapes"):
            ItemGraph(
                product_ids=("a", "b"),
                distances=np.zeros((3, 3)),
                weights=np.zeros((2, 2)),
            )


class TestToNetworkx:
    def test_complete_graph_export(self, graph_and_result):
        graph, _ = graph_and_result
        nx_graph = graph.to_networkx()
        n = graph.num_items
        assert nx_graph.number_of_nodes() == n
        assert nx_graph.number_of_edges() == n * (n - 1) // 2
        assert nx_graph.nodes[0]["target"] is True
        assert nx_graph.nodes[1]["target"] is False

    def test_edge_attributes(self, graph_and_result):
        graph, _ = graph_and_result
        nx_graph = graph.to_networkx()
        edge = nx_graph.edges[0, 1]
        assert edge["weight"] == pytest.approx(graph.weights[0, 1])
        assert edge["distance"] == pytest.approx(graph.distances[0, 1])
