"""Tests for the extended corpus analysis and summary-level ROUGE-L."""

import pytest

from repro.data.statistics import DistributionSummary, analyze_corpus, render_analysis
from repro.text.rouge import rouge_l, rouge_l_summary


class TestDistributionSummary:
    def test_from_values(self):
        summary = DistributionSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.maximum == 4.0

    def test_empty(self):
        summary = DistributionSummary.from_values([])
        assert summary.mean == 0.0
        assert summary.maximum == 0.0

    def test_ordering(self):
        summary = DistributionSummary.from_values(list(range(100)))
        assert summary.p25 <= summary.median <= summary.p75 <= summary.p95 <= summary.maximum


class TestAnalyzeCorpus:
    def test_shapes(self, cellphone_corpus):
        analysis = analyze_corpus(cellphone_corpus, top_aspects=5)
        assert analysis.name == "Cellphone"
        assert len(analysis.top_aspects) == 5
        assert analysis.reviews_per_product.mean > 0
        assert analysis.tokens_per_review.mean > 5

    def test_aspect_fractions_sum_to_one(self, cellphone_corpus):
        analysis = analyze_corpus(cellphone_corpus)
        for profile in analysis.top_aspects:
            total = (
                profile.positive_fraction
                + profile.negative_fraction
                + profile.neutral_fraction
            )
            assert total == pytest.approx(1.0)
            assert profile.num_reviews > 0

    def test_top_aspects_sorted_by_frequency(self, cellphone_corpus):
        analysis = analyze_corpus(cellphone_corpus)
        counts = [p.num_reviews for p in analysis.top_aspects]
        assert counts == sorted(counts, reverse=True)

    def test_render(self, cellphone_corpus):
        text = render_analysis(analyze_corpus(cellphone_corpus))
        assert "Corpus analysis" in text
        assert "reviews / product" in text
        assert "Top aspects" in text


class TestRougeLSummary:
    def test_identical_summaries(self):
        sentences = ["the battery is great", "the screen is poor"]
        score = rouge_l_summary(sentences, sentences)
        assert score.f1 == pytest.approx(1.0)

    def test_disjoint_summaries(self):
        score = rouge_l_summary(["alpha beta"], ["gamma delta"])
        assert score.f1 == 0.0

    def test_union_not_double_counted(self):
        """Two candidates matching the same reference tokens count once."""
        score = rouge_l_summary(
            ["the battery", "the battery"], ["the battery"]
        )
        assert score.recall == pytest.approx(1.0)
        assert score.precision == pytest.approx(0.5)

    def test_single_pair_matches_sentence_level(self):
        a, b = "the battery is great", "a great battery"
        summary = rouge_l_summary([a], [b])
        sentence = rouge_l(a, b)
        assert summary.recall == pytest.approx(sentence.recall)

    def test_union_across_candidates(self):
        """Different candidates can cover different reference parts."""
        reference = ["the battery is great and the screen is sharp"]
        split_candidates = ["the battery is great", "the screen is sharp"]
        score = rouge_l_summary(split_candidates, reference)
        assert score.recall > rouge_l_summary([split_candidates[0]], reference).recall

    def test_empty_inputs(self):
        assert rouge_l_summary([], ["something"]).f1 == 0.0
        assert rouge_l_summary(["something"], []).f1 == 0.0
