"""Tests for paired t-tests and Krippendorff's alpha."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.stats import krippendorff_alpha, paired_t_test


class TestPairedTTest:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(0)
        base = rng.normal(0, 0.1, 50)
        shift = 1.0 + rng.normal(0, 0.05, 50)  # noisy but clearly positive
        result = paired_t_test(list(base + shift), list(base))
        assert result.significant()
        assert result.statistic > 0

    def test_no_difference(self):
        values = [1.0, 2.0, 3.0]
        result = paired_t_test(values, values)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_too_few_pairs(self):
        result = paired_t_test([1.0], [2.0])
        assert result.p_value == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            paired_t_test([1.0], [1.0, 2.0])

    def test_symmetric_two_sided(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [1.5, 2.1, 3.4, 4.2]
        assert paired_t_test(a, b).p_value == pytest.approx(
            paired_t_test(b, a).p_value
        )


class TestKrippendorffAlpha:
    def test_perfect_agreement(self):
        ratings = [[3, 3, 3], [5, 5, 5], [1, 1, 1]]
        assert krippendorff_alpha(ratings) == pytest.approx(1.0)

    def test_identical_constant_ratings(self):
        assert krippendorff_alpha([[2, 2], [2, 2]]) == 1.0

    def test_random_ratings_near_zero(self):
        rng = np.random.default_rng(1)
        ratings = rng.integers(1, 6, size=(40, 5)).tolist()
        alpha = krippendorff_alpha(ratings)
        assert -0.3 < alpha < 0.3

    def test_systematic_disagreement_negative(self):
        # Raters always maximally split within units that average the same.
        ratings = [[1, 5], [5, 1], [1, 5], [5, 1]]
        assert krippendorff_alpha(ratings) < 0

    def test_missing_values_ignored(self):
        ratings = [[3, 3, None], [4, None, 4], [None, 2, 2]]
        assert krippendorff_alpha(ratings) == pytest.approx(1.0)

    def test_insufficient_data_nan(self):
        assert np.isnan(krippendorff_alpha([[1, None], [None, 2]]))

    def test_nominal_metric(self):
        ratings = [[1, 1], [2, 2], [1, 2]]
        nominal = krippendorff_alpha(ratings, metric="nominal")
        interval = krippendorff_alpha(ratings, metric="interval")
        assert np.isfinite(nominal) and np.isfinite(interval)

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            krippendorff_alpha([[1, 2]], metric="ordinal")

    def test_known_value_interval(self):
        """Hand-computed: 2 units x 2 raters, one unit split by 1 point.

        Values: (1,1) and (1,2).  D_o = (0 + 1) * 2 / 1 / 4 = 0.5.
        All values: [1,1,1,2]; cross pairs: 3 of delta 1, 3 of delta 0 ->
        D_e = 2*3/(4*3) = 0.5.  alpha = 1 - 0.5/0.5 = 0.
        """
        assert krippendorff_alpha([[1, 1], [1, 2]]) == pytest.approx(0.0)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.lists(st.integers(1, 5), min_size=2, max_size=4),
            min_size=2,
            max_size=10,
        )
    )
    def test_bounded_above_by_one(self, ratings):
        alpha = krippendorff_alpha(ratings)
        if np.isfinite(alpha):
            assert alpha <= 1.0 + 1e-9
