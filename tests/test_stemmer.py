"""Tests for the from-scratch Porter stemmer against canonical outputs."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import PorterStemmer, stem

# Canonical (word, stem) pairs from Porter's original test vocabulary.
CANONICAL = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("flies", "fli"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("motoring", "motor"),
    ("happy", "happi"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("sensational", "sensat"),
    ("running", "run"),
    ("connection", "connect"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("electrical", "electr"),
    ("adjustable", "adjust"),
    ("formalize", "formal"),
    ("activate", "activ"),
    ("batteries", "batteri"),
    ("charging", "charg"),
    ("charged", "charg"),
    ("argument", "argument"),
    ("controlling", "control"),
    ("sized", "size"),
    ("sky", "sky"),
]


@pytest.mark.parametrize("word, expected", CANONICAL)
def test_canonical_pairs(word, expected):
    assert stem(word) == expected


def test_short_words_untouched():
    assert stem("as") == "as"
    assert stem("a") == "a"
    assert stem("") == ""


def test_lowercases_input():
    assert stem("RUNNING") == "run"


def test_inflections_conflate():
    """The property the aspect miner relies on: variants share a stem."""
    assert stem("charging") == stem("charged")
    assert stem("battery") == stem("batteries")
    assert stem("fitting") == stem("fitted")


def test_shared_instance_matches_class():
    assert PorterStemmer().stem("motoring") == stem("motoring")


@given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=20))
def test_never_raises_and_never_longer(word):
    result = stem(word)
    assert isinstance(result, str)
    assert len(result) <= len(word)
    assert result  # stemming never empties a non-empty word
