"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.data.synthetic import (
    CategoryProfile,
    SyntheticCorpusBuilder,
    default_profiles,
    generate_corpus,
)
from repro.text.tokenize import tokenize


class TestProfiles:
    def test_three_categories(self):
        profiles = default_profiles()
        assert set(profiles) == {"Cellphone", "Toy", "Clothing"}

    def test_scale_grows_counts(self):
        small = default_profiles(0.5)["Cellphone"]
        large = default_profiles(2.0)["Cellphone"]
        assert large.num_products > small.num_products

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            default_profiles(0.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="aspects_per_family"):
            CategoryProfile(
                name="X",
                aspects={"a": ("a",), "b": ("b",)},
                num_products=10,
                num_reviewers=10,
                num_families=2,
                mean_reviews_per_product=5,
                mean_comparisons=3,
                aspects_per_family=5,
                aspects_per_product=5,
            )

    def test_aspects_per_product_bound(self):
        aspects = {str(i): (str(i),) for i in range(12)}
        with pytest.raises(ValueError, match="aspects_per_product"):
            CategoryProfile(
                name="X",
                aspects=aspects,
                num_products=10,
                num_reviewers=10,
                num_families=2,
                mean_reviews_per_product=5,
                mean_comparisons=3,
                aspects_per_family=6,
                aspects_per_product=8,
            )


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = generate_corpus("Toy", scale=0.3, seed=5)
        b = generate_corpus("Toy", scale=0.3, seed=5)
        assert [p.product_id for p in a.products] == [p.product_id for p in b.products]
        assert [r.text for r in a.reviews] == [r.text for r in b.reviews]

    def test_different_seeds_differ(self):
        a = generate_corpus("Toy", scale=0.3, seed=5)
        b = generate_corpus("Toy", scale=0.3, seed=6)
        assert [r.text for r in a.reviews] != [r.text for r in b.reviews]

    def test_unknown_category(self):
        with pytest.raises(ValueError, match="unknown category"):
            generate_corpus("Books")

    def test_stats_shape_matches_profile(self, cellphone_corpus):
        profile = default_profiles(0.35)["Cellphone"]
        stats = cellphone_corpus.stats()
        assert stats.num_products == profile.num_products
        # Long-tailed but centred near the profile mean.
        assert 0.5 * profile.mean_reviews_per_product < stats.avg_reviews_per_product
        assert stats.avg_reviews_per_product < 2.0 * profile.mean_reviews_per_product

    def test_every_product_has_reviews(self, cellphone_corpus):
        for product in cellphone_corpus.products:
            assert len(cellphone_corpus.reviews_of(product.product_id)) >= 2

    def test_also_bought_references_valid(self, cellphone_corpus):
        ids = {p.product_id for p in cellphone_corpus.products}
        for product in cellphone_corpus.products:
            assert product.product_id not in product.also_bought
            assert set(product.also_bought) <= ids

    def test_reviews_have_mentions_and_text(self, cellphone_corpus):
        for review in cellphone_corpus.reviews:
            assert review.mentions
            assert review.text
            assert 1.0 <= review.rating <= 5.0

    def test_aspect_terms_appear_in_text(self, cellphone_corpus):
        """The first word of a mentioned aspect's surface form is in the text."""
        profile = default_profiles(0.35)["Cellphone"]
        misses = 0
        checked = 0
        for review in list(cellphone_corpus.reviews)[:100]:
            tokens = set(tokenize(review.text))
            for mention in review.mentions:
                checked += 1
                surfaces = profile.aspects[mention.aspect]
                first_words = {tokenize(s)[0] for s in surfaces}
                if not (first_words & tokens):
                    misses += 1
        assert checked > 0
        assert misses == 0

    def test_ratings_correlate_with_sentiment(self, cellphone_corpus):
        sentiments = []
        ratings = []
        for review in cellphone_corpus.reviews:
            signed = [m.sentiment for m in review.mentions if m.sentiment]
            if signed:
                sentiments.append(np.mean(signed))
                ratings.append(review.rating)
        correlation = np.corrcoef(sentiments, ratings)[0, 1]
        assert correlation > 0.5

    def test_custom_profile(self):
        profile = CategoryProfile(
            name="Mini",
            aspects={str(i): (f"aspect{i}", f"alt{i}") for i in range(8)},
            num_products=10,
            num_reviewers=12,
            num_families=2,
            mean_reviews_per_product=4,
            mean_comparisons=3,
            aspects_per_family=6,
            aspects_per_product=4,
        )
        corpus = SyntheticCorpusBuilder(profile, np.random.default_rng(0)).build()
        assert len(corpus.products) == 10
        assert corpus.name == "Mini"

    def test_generate_with_explicit_profile(self):
        profile = default_profiles(0.3)["Toy"]
        corpus = generate_corpus(profile=profile, seed=1)
        assert corpus.name == "Toy"
