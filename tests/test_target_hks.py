"""Tests for TargetHkS solvers: greedy (Alg. 2), baselines, brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.target_hks import (
    HksSolution,
    _solve_greedy_reference,
    solve_brute_force,
    solve_greedy,
    solve_ilp,
    solve_random,
    solve_top_k_similarity,
    total_weight,
)
from tests.test_ilp import random_weights


class TestPaperFigure4:
    """The worked example of Fig. 4: TargetHkS differs from plain HkS."""

    # Vertices p1..p6 -> indices 0..5; weights read off the figure.
    @pytest.fixture()
    def figure4_weights(self):
        weights = np.zeros((6, 6))
        edges = {
            (0, 1): 6.0, (0, 2): 3.1, (0, 3): 8.2, (0, 4): 4.0, (0, 5): 8.0,
            (1, 2): 4.3, (1, 3): 5.5, (1, 4): 8.5, (1, 5): 9.0,
            (2, 3): 3.0, (2, 4): 2.0, (2, 5): 6.3,
            (3, 4): 7.0, (3, 5): 9.2,
            (4, 5): 9.0,
        }
        for (i, j), w in edges.items():
            weights[i, j] = weights[j, i] = w
        return weights

    def test_target_anchored_solution(self, figure4_weights):
        solution = solve_brute_force(figure4_weights, k=3, target=0)
        assert solution.selected == (0, 3, 5)
        assert solution.weight == pytest.approx(8.2 + 8.0 + 9.2)  # 25.4

    def test_unanchored_optimum_differs(self, figure4_weights):
        best = max(
            (solve_brute_force(figure4_weights, 3, target=v) for v in range(6)),
            key=lambda s: s.weight,
        )
        assert best.weight == pytest.approx(26.5)  # {p2, p5, p6} in the paper
        assert set(best.selected) == {1, 4, 5}


class TestGreedy:
    def test_contains_target_and_k_vertices(self):
        weights = random_weights(10, 0)
        solution = solve_greedy(weights, 4, target=2)
        assert 2 in solution.selected
        assert len(set(solution.selected)) == 4

    def test_weight_reported_correctly(self):
        weights = random_weights(8, 1)
        solution = solve_greedy(weights, 5)
        assert solution.weight == pytest.approx(total_weight(weights, solution.selected))

    def test_k_one(self):
        solution = solve_greedy(random_weights(5, 2), 1)
        assert solution.selected == (0,)
        assert solution.weight == 0.0

    def test_near_optimal_on_random_graphs(self):
        """Greedy tracks the optimum closely (Table 5's ~0.0000x ratios)."""
        gaps = []
        for seed in range(10):
            weights = random_weights(10, seed)
            greedy = solve_greedy(weights, 4)
            optimum = solve_brute_force(weights, 4)
            gaps.append((optimum.weight - greedy.weight) / optimum.weight)
        assert np.mean(gaps) < 0.05

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(3, 9), st.integers(1, 5))
    def test_invariants(self, seed, n, k):
        k = min(k, n)
        weights = random_weights(n, seed)
        solution = solve_greedy(weights, k)
        assert len(set(solution.selected)) == k
        assert 0 in solution.selected
        assert solution.weight <= solve_brute_force(weights, k).weight + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 12), st.integers(1, 12), st.booleans())
    def test_incremental_matches_reference(self, seed, n, k, offset_target):
        """Incremental gain updates select exactly like the recompute loop."""
        k = min(k, n)
        target = (n - 1) if offset_target else 0
        weights = random_weights(n, seed)
        fast = solve_greedy(weights, k, target=target)
        reference = _solve_greedy_reference(weights, k, target=target)
        assert fast.selected == reference.selected
        assert fast.weight == pytest.approx(reference.weight, rel=1e-12)

    def test_incremental_matches_reference_with_ties(self):
        """On an all-equal-weights graph, tie-breaking is identical."""
        n = 7
        weights = np.ones((n, n)) - np.eye(n)
        for k in range(1, n + 1):
            fast = solve_greedy(weights, k, target=3)
            reference = _solve_greedy_reference(weights, k, target=3)
            assert fast.selected == reference.selected
            assert fast.weight == reference.weight


class TestBaselines:
    def test_top_k_similarity_picks_closest_to_target(self):
        weights = np.zeros((4, 4))
        weights[0, 1] = weights[1, 0] = 9.0
        weights[0, 2] = weights[2, 0] = 5.0
        weights[0, 3] = weights[3, 0] = 1.0
        weights[2, 3] = weights[3, 2] = 100.0  # irrelevant to the baseline
        solution = solve_top_k_similarity(weights, 3)
        assert set(solution.selected) == {0, 1, 2}

    def test_random_contains_target(self, rng):
        weights = random_weights(8, 3)
        solution = solve_random(weights, 4, rng, target=5)
        assert 5 in solution.selected
        assert len(set(solution.selected)) == 4

    def test_random_seeded(self):
        weights = random_weights(8, 3)
        a = solve_random(weights, 4, np.random.default_rng(1))
        b = solve_random(weights, 4, np.random.default_rng(1))
        assert a.selected == b.selected


class TestSolveIlp:
    def test_backend_dispatch(self):
        weights = random_weights(6, 0)
        milp = solve_ilp(weights, 3, backend="milp", time_limit=10)
        bnb = solve_ilp(weights, 3, backend="bnb", time_limit=10)
        assert milp.weight == pytest.approx(bnb.weight)
        assert "milp" in milp.algorithm and "bnb" in bnb.algorithm

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            solve_ilp(random_weights(4, 0), 2, backend="gurobi")


class TestHksSolution:
    def test_duplicate_vertices_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            HksSolution(selected=(0, 0), weight=1.0, algorithm="x")
