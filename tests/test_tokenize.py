"""Unit and property tests for the tokeniser."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import ngrams, sentences, tokenize, vocabulary


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("GREAT Phone") == ["great", "phone"]

    def test_keeps_intra_word_apostrophes_and_hyphens(self):
        assert tokenize("don't glow-in-the-dark") == ["don't", "glow-in-the-dark"]

    def test_strips_punctuation(self):
        assert tokenize("Wow!!! Amazing, right?") == ["wow", "amazing", "right"]

    def test_numbers_kept(self):
        assert tokenize("1080p video at 30fps") == ["1080p", "video", "at", "30fps"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("?!.,;:") == []

    def test_leading_trailing_apostrophes_dropped(self):
        assert tokenize("'quoted'") == ["quoted"]

    @given(st.text())
    def test_never_raises_and_all_lowercase(self, text):
        tokens = tokenize(text)
        assert all(token == token.lower() for token in tokens)

    @given(st.text(alphabet=string.ascii_letters + " ", max_size=200))
    def test_tokens_contain_no_spaces(self, text):
        assert all(" " not in token for token in tokenize(text))


class TestSentences:
    def test_basic_split(self):
        assert sentences("Great phone. Battery lasts two days!") == [
            "Great phone.",
            "Battery lasts two days!",
        ]

    def test_abbreviation_not_split(self):
        result = sentences("Dr. Smith approved. It works.")
        assert result == ["Dr. Smith approved.", "It works."]

    def test_question_marks(self):
        assert sentences("Really? Yes.") == ["Really?", "Yes."]

    def test_no_terminator(self):
        assert sentences("no punctuation here") == ["no punctuation here"]

    def test_empty(self):
        assert sentences("") == []

    def test_whitespace_only(self):
        assert sentences("   \n  ") == []

    @given(st.text(max_size=300))
    def test_never_raises(self, text):
        result = sentences(text)
        assert all(isinstance(s, str) and s for s in result)


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert list(ngrams(["x", "y"], 1)) == [("x",), ("y",)]

    def test_n_larger_than_sequence(self):
        assert list(ngrams(["a"], 2)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))

    @given(st.lists(st.text(max_size=5), max_size=30), st.integers(1, 5))
    def test_count_formula(self, tokens, n):
        assert len(list(ngrams(tokens, n))) == max(0, len(tokens) - n + 1)


class TestVocabulary:
    def test_union(self):
        assert vocabulary([["a", "b"], ["b", "c"]]) == {"a", "b", "c"}

    def test_empty(self):
        assert vocabulary([]) == set()
