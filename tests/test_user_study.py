"""Tests for the simulated user study."""

import numpy as np
import pytest

from repro.core.selection import make_selector
from repro.eval.user_study import _likert, _shared_aspect_fraction, run_user_study


@pytest.fixture()
def study_examples(instances, config, rng):
    examples = {}
    for name in ("Random", "CRS", "CompaReSetS+"):
        selector = make_selector(name)
        examples[name] = [
            selector.select(inst, config, rng=rng) for inst in instances[:4]
        ]
    return examples


class TestLikert:
    def test_clipping(self):
        assert _likert(10.0, 0.0, 1.0) == 5.0
        assert _likert(-10.0, 0.0, 1.0) == 1.0

    def test_midpoint(self):
        assert _likert(0.5, 0.0, 1.0) == pytest.approx(3.0)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            _likert(0.5, 1.0, 0.0)


class TestSharedAspectFraction:
    def test_bounds(self, instances, config, rng):
        result = make_selector("Random").select(instances[0], config, rng=rng)
        fraction = _shared_aspect_fraction(result)
        assert 0.0 <= fraction <= 1.0

    def test_identical_selections_full_overlap(self, paper_example_instance, config):
        from repro.core.selection import SelectionResult

        result = SelectionResult(
            instance=paper_example_instance,
            selections=((0, 1),),
            algorithm="x",
        )
        assert _shared_aspect_fraction(result) == 1.0


class TestRunUserStudy:
    def test_outcome_structure(self, study_examples, config):
        outcomes = run_user_study(study_examples, config, num_annotators=5, seed=1)
        assert {o.algorithm for o in outcomes} == set(study_examples)
        for outcome in outcomes:
            for score in (
                outcome.q1_similarity,
                outcome.q2_informativeness,
                outcome.q3_comparison,
            ):
                assert 1.0 <= score <= 5.0
            assert outcome.num_examples == 4
            assert outcome.num_annotators == 5

    def test_deterministic(self, study_examples, config):
        a = run_user_study(study_examples, config, seed=9)
        b = run_user_study(study_examples, config, seed=9)
        assert a == b

    def test_seed_changes_ratings(self, study_examples, config):
        a = run_user_study(study_examples, config, seed=1)
        b = run_user_study(study_examples, config, seed=2)
        assert any(
            x.q1_similarity != y.q1_similarity for x, y in zip(a, b)
        )

    def test_informed_selector_scores_at_least_random(self, study_examples, config):
        outcomes = {o.algorithm: o for o in run_user_study(study_examples, config, seed=3)}
        assert (
            outcomes["CompaReSetS+"].q3_comparison
            >= outcomes["Random"].q3_comparison - 0.3
        )

    def test_alpha_finite_or_nan(self, study_examples, config):
        for outcome in run_user_study(study_examples, config, seed=4):
            assert np.isfinite(outcome.alpha) or np.isnan(outcome.alpha)
