"""Tests for pi(S)/phi(S) vector construction, incl. the paper's example."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.vectors import OpinionScheme, VectorSpace
from repro.data.models import AspectMention, Review
from tests.conftest import make_review

ASPECTS = ("battery", "lens", "quality")


@pytest.fixture()
def space() -> VectorSpace:
    return VectorSpace(ASPECTS)


class TestConstruction:
    def test_duplicate_aspects_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            VectorSpace(["a", "a"])

    def test_dimensions(self):
        assert VectorSpace(ASPECTS).opinion_dim == 6
        assert VectorSpace(ASPECTS, OpinionScheme.THREE_POLARITY).opinion_dim == 9
        assert VectorSpace(ASPECTS, OpinionScheme.UNARY_SCALE).opinion_dim == 3

    def test_repr(self):
        assert "z=3" in repr(VectorSpace(ASPECTS))


class TestPaperWorkingExample1:
    """Numbers from §2.1.1's Working Example 1 (Fig. 2a)."""

    def test_tau_matches_paper(self, space, paper_example_instance):
        tau = space.opinion_vector(paper_example_instance.reviews[0])
        expected = np.array([2, 4, 2, 2, 2, 2]) / 6.0
        np.testing.assert_allclose(tau, expected)

    def test_gamma_matches_paper(self, space, paper_example_instance):
        gamma = space.aspect_vector(paper_example_instance.reviews[0])
        np.testing.assert_allclose(gamma, np.array([6, 4, 4]) / 6.0)

    def test_optimal_subset_reproduces_tau_and_gamma(self, space, paper_example_instance):
        reviews = paper_example_instance.reviews[0]
        subset = [reviews[4], reviews[5], reviews[6]]  # r5, r6, r7
        np.testing.assert_allclose(
            space.opinion_vector(subset), space.opinion_vector(reviews)
        )
        np.testing.assert_allclose(
            space.aspect_vector(subset), space.aspect_vector(reviews)
        )


class TestAspectVector:
    def test_empty_set_is_zero(self, space):
        assert not space.aspect_vector([]).any()

    def test_unknown_aspects_ignored(self, space):
        review = make_review("r", "p", [("exotic", 1)])
        assert not space.aspect_vector([review]).any()

    def test_max_normalisation(self, space):
        reviews = [
            make_review("r1", "p", [("battery", 1), ("lens", 1)]),
            make_review("r2", "p", [("battery", -1)]),
        ]
        np.testing.assert_allclose(space.aspect_vector(reviews), [1.0, 0.5, 0.0])

    def test_max_entry_is_one_when_nonempty(self, space):
        reviews = [make_review("r1", "p", [("lens", 0)])]
        assert space.aspect_vector(reviews).max() == pytest.approx(1.0)


class TestOpinionVectorBinary:
    def test_interleaved_layout(self, space):
        review = make_review("r1", "p", [("battery", 1), ("lens", -1)])
        np.testing.assert_allclose(
            space.opinion_vector([review]), [1, 0, 0, 1, 0, 0]
        )

    def test_neutral_dropped_from_pi_but_counted_in_phi(self, space):
        review = make_review("r1", "p", [("battery", 0)])
        assert not space.opinion_vector([review]).any()
        assert space.aspect_vector([review])[0] == 1.0

    def test_mixed_polarity_within_review_resolves_by_sum(self, space):
        review = Review(
            review_id="r1",
            product_id="p",
            reviewer_id="u",
            rating=3.0,
            text="x",
            mentions=(
                AspectMention("battery", 1, strength=2.0),
                AspectMention("battery", -1, strength=0.5),
            ),
        )
        pi = space.opinion_vector([review])
        assert pi[0] == 1.0 and pi[1] == 0.0


class TestOpinionVectorThreePolarity:
    def test_neutral_channel(self):
        space = VectorSpace(ASPECTS, OpinionScheme.THREE_POLARITY)
        review = make_review("r1", "p", [("battery", 0), ("lens", 1)])
        pi = space.opinion_vector([review])
        # layout: (b+, b-, b0, l+, l-, l0, q+, q-, q0)
        np.testing.assert_allclose(pi, [0, 0, 1, 1, 0, 0, 0, 0, 0])


class TestOpinionVectorUnary:
    def test_sigmoid_of_summed_strengths(self):
        space = VectorSpace(ASPECTS, OpinionScheme.UNARY_SCALE)
        reviews = [
            make_review("r1", "p", [("battery", 1)]),
            make_review("r2", "p", [("battery", 1)]),
        ]
        pi = space.opinion_vector(reviews)
        assert pi[0] == pytest.approx(1 / (1 + np.exp(-2.0)))
        assert pi[1] == 0.0  # unmentioned aspects stay zero, not 0.5

    def test_negative_sentiment_below_half(self):
        space = VectorSpace(ASPECTS, OpinionScheme.UNARY_SCALE)
        review = make_review("r1", "p", [("battery", -1)])
        assert 0 < space.opinion_vector([review])[0] < 0.5


class TestIncidenceCache:
    def test_cached_arrays_reused(self, space):
        review = make_review("r1", "p", [("battery", 1)])
        first = space.review_aspect_incidence(review)
        second = space.review_aspect_incidence(review)
        assert first is second  # memoised
        assert space.review_opinion_incidence(review) is space.review_opinion_incidence(review)

    def test_cache_does_not_leak_across_spaces(self):
        review = make_review("r1", "p", [("battery", 1)])
        a = VectorSpace(ASPECTS)
        b = VectorSpace(("battery",))
        assert a.review_aspect_incidence(review).shape == (3,)
        assert b.review_aspect_incidence(review).shape == (1,)


class TestMatrices:
    def test_column_counts(self, space, paper_example_instance):
        reviews = paper_example_instance.reviews[0]
        assert space.aspect_matrix(reviews).shape == (3, 7)
        assert space.opinion_matrix(reviews).shape == (6, 7)

    def test_empty_reviews(self, space):
        assert space.aspect_matrix([]).shape == (3, 0)
        assert space.opinion_matrix([]).shape == (6, 0)

    def test_columns_match_single_review_vectors(self, space, paper_example_instance):
        reviews = paper_example_instance.reviews[0]
        matrix = space.aspect_matrix(reviews)
        for j, review in enumerate(reviews):
            np.testing.assert_allclose(
                matrix[:, j], space.review_aspect_incidence(review)
            )


sentiments = st.sampled_from([-1, 0, 1])
mention_lists = st.lists(
    st.tuples(st.sampled_from(ASPECTS), sentiments), min_size=0, max_size=4
)


@given(st.lists(mention_lists, min_size=0, max_size=6))
def test_vector_invariants(review_mentions):
    """Property: vectors are non-negative, bounded, max(phi)=1 when nonzero."""
    space = VectorSpace(ASPECTS)
    reviews = [
        make_review(f"r{i}", "p", mentions)
        for i, mentions in enumerate(review_mentions)
    ]
    phi = space.aspect_vector(reviews)
    pi = space.opinion_vector(reviews)
    assert (phi >= 0).all() and (pi >= 0).all()
    assert (phi <= 1.0 + 1e-12).all()
    if phi.any():
        assert phi.max() == pytest.approx(1.0)
    # Opinion counts can't exceed the aspect count of the same aspect.
    for a in range(3):
        assert pi[2 * a] + pi[2 * a + 1] <= 2 * phi[a] + 1e-12
